//! Graphviz export of provenance (sub)graphs.
//!
//! Follows the paper's visual convention (Figs 3, 4, 8): rectangles for
//! tuple vertices, ovals for rule-execution vertices, edges pointing from
//! inputs into executions and from executions to derived tuples. Vertex
//! probabilities are rendered in the label.

use crate::graph::{Derivation, ProvGraph};
use p3_datalog::engine::{Database, TupleId};
use p3_datalog::program::Program;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders the provenance subgraph rooted at `root` in Graphviz `dot`
/// syntax.
pub fn to_dot(graph: &ProvGraph, db: &Database, program: &Program, root: TupleId) -> String {
    let mut out = String::new();
    let syms = program.symbols();
    out.push_str("digraph provenance {\n");
    out.push_str("  rankdir=BT;\n");
    out.push_str("  node [fontname=\"Helvetica\"];\n");

    let tuples = graph.reachable_tuples(root);
    let mut emitted_execs: HashSet<u32> = HashSet::new();

    let mut ordered: Vec<TupleId> = tuples.iter().copied().collect();
    ordered.sort_unstable();
    for &t in &ordered {
        let label = format!("{}", db.display_tuple(t, syms));
        let base_prob: Option<f64> = graph.derivations(t).iter().find_map(|d| match d {
            Derivation::Base(c) => Some(program.clause(*c).prob),
            Derivation::Rule(_) => None,
        });
        let suffix = base_prob.map(|p| format!("\\np={p}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "  t{} [shape=box, label=\"{}{}\"];",
            t.0,
            escape(&label),
            suffix
        );
        for d in graph.derivations(t) {
            if let Derivation::Rule(e) = d {
                let exec = graph.exec(*e);
                if emitted_execs.insert(e.0) {
                    let clause = program.clause(exec.rule);
                    let _ = writeln!(
                        out,
                        "  e{} [shape=oval, label=\"{}\\np={}\"];",
                        e.0, clause.label, clause.prob
                    );
                    for &b in exec.body.iter() {
                        let _ = writeln!(out, "  t{} -> e{};", b.0, e.0);
                    }
                }
                let _ = writeln!(out, "  e{} -> t{};", e.0, t.0);
            }
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::evaluate_with_provenance;

    #[test]
    fn dot_output_mentions_all_reachable_vertices() {
        let p = Program::parse(
            "r1 0.8: q(X) :- p(X).
             t1 0.5: p(a).
             t9 0.5: p(zzz).",
        )
        .unwrap();
        let (db, g) = evaluate_with_provenance(&p);
        let q = p.symbols().get("q").unwrap();
        let a = p3_datalog::ast::Const::Sym(p.symbols().get("a").unwrap());
        let qa = db.lookup(q, &[a]).unwrap();
        let dot = to_dot(&g, &db, &p, qa);
        assert!(dot.contains("q(a)"));
        assert!(dot.contains("p(a)"));
        assert!(dot.contains("r1"), "rule execution vertex rendered");
        assert!(dot.contains("p=0.8"), "rule probability annotated");
        assert!(!dot.contains("zzz"), "unreachable tuples excluded");
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn quotes_in_constants_are_escaped() {
        let p = Program::parse(r#"t1 0.5: live("Steve","DC")."#).unwrap();
        let (db, g) = evaluate_with_provenance(&p);
        let live = p.symbols().get("live").unwrap();
        let s = |n: &str| p3_datalog::ast::Const::Sym(p.symbols().get(n).unwrap());
        let t = db.lookup(live, &[s("Steve"), s("DC")]).unwrap();
        let dot = to_dot(&g, &db, &p, t);
        assert!(dot.contains(r#"live(\"Steve\",\"DC\")"#), "{dot}");
    }
}
