//! # p3-provenance
//!
//! Provenance capture and querying for ProbLog-like programs, following §3
//! of the P3 paper (EDBT 2020).
//!
//! * [`graph`] — the provenance graph: tuple vertices and rule-execution
//!   vertices with unidirectional dependency edges (§3.1);
//! * [`capture`] — maintenance during evaluation via the engine's
//!   [`p3_datalog::engine::DerivationSink`] seam — the optimised variant of
//!   the paper's rule rewriting (its footnote 1: the rule body is evaluated
//!   once);
//! * [`rewrite`] — the literal §3.2 scheme: the program is rewritten so
//!   that rule executions are recorded in ordinary relations, and the graph
//!   is reconstructed from those tables afterwards;
//! * [`extract`] — provenance-polynomial extraction with cycle elimination
//!   (§3.3, Eq. 6–13) and hop limits;
//! * [`sld`] — top-down SLD-resolution proof enumeration (§2.2's route to
//!   the DNF), an independent cross-check of [`extract`];
//! * [`vars`] — the clause ↔ Boolean-variable correspondence;
//! * [`dot`] / [`explain`] — Graphviz and textual renderings.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod capture;
pub mod demand;
pub mod dot;
pub mod explain;
pub mod extract;
pub mod graph;
pub mod rewrite;
pub mod sld;
pub mod vars;

pub use capture::CaptureSink;
pub use demand::{evaluate_query_with_provenance, DemandEvaluation, DemandStats};
pub use extract::{extract_polynomial, Analysis, ExtractOptions, Extractor};
pub use graph::{Derivation, ExecId, ProvGraph, RuleExec};
pub use vars::clause_vars;
