//! Top-down SLD-resolution proof enumeration.
//!
//! §2.2 of the paper notes that ProbLog obtains the query's DNF "by
//! SLD-resolution" before compiling it to a BDD. This module implements
//! that route: starting from the ground query atom, goals are resolved
//! against facts and (freshly-renamed) rule heads by unification, and every
//! successful refutation contributes one monomial — the set of clauses it
//! used.
//!
//! Together with [`crate::extract`] (bottom-up graph extraction) this gives
//! two *independent* derivations of the provenance polynomial; the
//! equivalence tests assert they agree, which is a strong end-to-end check
//! on both.
//!
//! ## Depth bound
//!
//! SLD-resolution on recursive programs does not terminate without a bound
//! (a left-recursive rule regenerates its own goal), so [`SldOptions`]
//! requires one: `max_depth` caps rule applications along any proof branch,
//! matching the meaning of [`crate::extract::ExtractOptions::max_depth`].
//! Proofs that revisit a ground ancestor goal are pruned — by the paper's
//! Eq. 6–13 argument they are absorbed by a shorter proof anyway, so the
//! normalised DNF is unchanged.

use crate::vars::var_of;
use p3_datalog::ast::{ClauseId, CmpOp, Const, Term};
use p3_datalog::program::Program;
use p3_datalog::symbol::Symbol;
use p3_datalog::worlds::{self, WorldsError};
use p3_prob::{Dnf, Monomial};
use std::collections::HashMap;

/// Options for SLD enumeration.
#[derive(Clone, Copy, Debug)]
pub struct SldOptions {
    /// Maximum rule applications along one proof branch (required —
    /// unbounded SLD diverges on recursion).
    pub max_depth: usize,
    /// Hard cap on enumerated proofs, guarding against blow-up.
    pub max_proofs: usize,
}

impl Default for SldOptions {
    fn default() -> Self {
        Self {
            max_depth: 16,
            max_proofs: 1 << 20,
        }
    }
}

impl SldOptions {
    /// Options with the given depth bound.
    pub fn with_max_depth(max_depth: usize) -> Self {
        Self {
            max_depth,
            ..Self::default()
        }
    }
}

/// Enumerates SLD proofs of the ground query `pred(args…)` and returns the
/// provenance polynomial (one monomial per proof, normalised).
pub fn sld_polynomial(program: &Program, pred: Symbol, args: &[Const], opts: SldOptions) -> Dnf {
    let mut cx = Cx::new(program, opts);
    let goal = Goal {
        pred,
        args: args.iter().map(|&c| ITerm::Const(c)).collect(),
    };
    cx.prove(
        vec![Item::Atom {
            goal,
            depth: 0,
            ancestors: None,
        }],
        Vec::new(),
    );
    Dnf::new(cx.proofs)
}

/// Convenience: query given as source text, e.g. `know("Ben","Elena")`.
pub fn sld_polynomial_str(
    program: &Program,
    query: &str,
    opts: SldOptions,
) -> Result<Dnf, WorldsError> {
    let (pred, args) = worlds::parse_ground_query(program, query)?;
    Ok(sld_polynomial(program, pred, &args, opts))
}

/// A term during resolution: a constant or a renamed (fresh) variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ITerm {
    Const(Const),
    Var(u32),
}

#[derive(Clone, Debug)]
struct Goal {
    pred: Symbol,
    args: Vec<ITerm>,
}

/// A node in a goal's proof-tree ancestor chain (shared immutably between
/// sibling goals via `Rc`).
#[derive(Debug)]
struct Ancestor {
    pred: Symbol,
    args: Vec<Const>,
    parent: Option<std::rc::Rc<Ancestor>>,
}

/// A resolvent item: an atom to prove — carrying its own proof-tree depth
/// and ancestor chain, which are per-path properties, *not* properties of
/// the DFS continuation — or a constraint to check once the atoms that
/// bind its variables (its rule's body, pushed above it on the stack) have
/// been proved.
#[derive(Clone, Debug)]
enum Item {
    Atom {
        goal: Goal,
        /// Rule nestings above this goal in the proof tree.
        depth: usize,
        ancestors: Option<std::rc::Rc<Ancestor>>,
    },
    Check(PendingConstraint),
}

/// A constraint whose operands have been renamed; checked as soon as both
/// sides are ground.
#[derive(Clone, Copy, Debug)]
struct PendingConstraint {
    op: CmpOp,
    lhs: ITerm,
    rhs: ITerm,
}

struct Cx<'p> {
    program: &'p Program,
    opts: SldOptions,
    /// Clause list grouped by head predicate for goal dispatch.
    by_pred: HashMap<Symbol, Vec<ClauseId>>,
    /// Variable bindings; `None` = unbound. Indexed by fresh var id.
    bindings: Vec<Option<ITerm>>,
    /// Bound-variable trail for backtracking.
    trail: Vec<u32>,
    proofs: Vec<Monomial>,
}

impl<'p> Cx<'p> {
    fn new(program: &'p Program, opts: SldOptions) -> Self {
        let mut by_pred: HashMap<Symbol, Vec<ClauseId>> = HashMap::new();
        for (id, clause) in program.iter() {
            by_pred.entry(clause.head.pred).or_default().push(id);
        }
        Self {
            program,
            opts,
            by_pred,
            bindings: Vec::new(),
            trail: Vec::new(),
            proofs: Vec::new(),
        }
    }

    /// Dereferences a term through the binding chain.
    fn walk(&self, mut t: ITerm) -> ITerm {
        while let ITerm::Var(v) = t {
            match self.bindings[v as usize] {
                Some(next) => t = next,
                None => return t,
            }
        }
        t
    }

    fn fresh_var(&mut self) -> u32 {
        let v = self.bindings.len() as u32;
        self.bindings.push(None);
        v
    }

    fn bind(&mut self, v: u32, t: ITerm) {
        debug_assert!(self.bindings[v as usize].is_none());
        self.bindings[v as usize] = Some(t);
        self.trail.push(v);
    }

    fn rollback(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let v = self.trail.pop().expect("trail underflow");
            self.bindings[v as usize] = None;
        }
    }

    /// Unifies two terms; returns false (with bindings left on the trail
    /// for the caller to roll back) on clash.
    fn unify(&mut self, a: ITerm, b: ITerm) -> bool {
        let a = self.walk(a);
        let b = self.walk(b);
        match (a, b) {
            (ITerm::Const(x), ITerm::Const(y)) => x == y,
            (ITerm::Var(v), other) | (other, ITerm::Var(v)) => {
                if let ITerm::Var(w) = other {
                    if v == w {
                        return true;
                    }
                }
                self.bind(v, other);
                true
            }
        }
    }

    /// If both operands of `c` are ground, evaluates it; unresolved
    /// constraints return `None` (retry later).
    fn try_constraint(&self, c: PendingConstraint) -> Option<bool> {
        match (self.walk(c.lhs), self.walk(c.rhs)) {
            (ITerm::Const(l), ITerm::Const(r)) => Some(c.op.eval(l, r)),
            _ => None,
        }
    }

    /// Depth-first proof search over the resolvent stack.
    ///
    /// `items` is the current resolvent (leftmost selection from the end of
    /// the vector; each atom carries its own proof-tree depth and ancestor
    /// chain) and `used` the clause ids accumulated on this branch.
    fn prove(&mut self, mut items: Vec<Item>, mut used: Vec<ClauseId>) {
        if self.proofs.len() >= self.opts.max_proofs {
            return;
        }
        let (goal, depth, ancestors) = loop {
            match items.pop() {
                None => {
                    used.sort_unstable();
                    used.dedup();
                    self.proofs
                        .push(Monomial::new(used.into_iter().map(var_of).collect()));
                    return;
                }
                Some(Item::Check(c)) => {
                    // The body atoms above this check have been proved, so
                    // the constraint is ground (safety guarantees its
                    // variables occur in that body).
                    match self.try_constraint(c) {
                        Some(true) => continue,
                        Some(false) => return,
                        None => unreachable!("constraint selected before its body grounded"),
                    }
                }
                Some(Item::Atom {
                    goal,
                    depth,
                    ancestors,
                }) => break (goal, depth, ancestors),
            }
        };

        // Ground-ancestor pruning (cycle elimination): a goal identical to
        // one of its proof-tree ancestors cannot contribute a new minimal
        // proof (Eq. 6-13: such proofs are absorbed by a shortcut proof).
        let ground_args: Option<Vec<Const>> = goal
            .args
            .iter()
            .map(|&t| match self.walk(t) {
                ITerm::Const(c) => Some(c),
                ITerm::Var(_) => None,
            })
            .collect();
        if let Some(args) = &ground_args {
            let mut cursor = ancestors.as_deref();
            while let Some(node) = cursor {
                if node.pred == goal.pred && &node.args == args {
                    return;
                }
                cursor = node.parent.as_deref();
            }
        }

        let clause_ids = match self.by_pred.get(&goal.pred) {
            Some(ids) => ids.clone(),
            None => return,
        };
        for id in clause_ids {
            let clause = self.program.clause(id);
            let mark = self.trail.len();
            let vars_before = self.bindings.len();

            // Rename the clause's variables freshly.
            let mut renaming: HashMap<Symbol, u32> = HashMap::new();
            let rename = |t: &Term, cx: &mut Self, renaming: &mut HashMap<Symbol, u32>| match t {
                Term::Const(c) => ITerm::Const(*c),
                Term::Var(v) => {
                    let fresh = *renaming.entry(*v).or_insert_with(|| cx.fresh_var());
                    ITerm::Var(fresh)
                }
            };

            // Unify the head.
            let mut ok = true;
            for (g, h) in goal.args.iter().zip(&clause.head.args) {
                let h = rename(h, self, &mut renaming);
                if !self.unify(*g, h) {
                    ok = false;
                    break;
                }
            }

            // Rules consume nesting budget.
            if ok && clause.is_rule() && depth >= self.opts.max_depth {
                ok = false;
            }
            if ok {
                // Constraints: evaluate those already ground; schedule the
                // rest below the body so they run once it has grounded them.
                let mut pending: Vec<PendingConstraint> = Vec::new();
                for c in clause.constraints() {
                    let pc = PendingConstraint {
                        op: c.op,
                        lhs: rename(&c.lhs, self, &mut renaming),
                        rhs: rename(&c.rhs, self, &mut renaming),
                    };
                    match self.try_constraint(pc) {
                        Some(true) => {}
                        Some(false) => {
                            ok = false;
                            break;
                        }
                        None => pending.push(pc),
                    }
                }
                if ok {
                    let mut next_items = items.clone();
                    // Checks go under the body (popped after it) …
                    for pc in pending {
                        next_items.push(Item::Check(pc));
                    }
                    // The children's ancestor chain extends this goal's
                    // chain when the goal is ground (non-ground goals have
                    // no stable identity to check against).
                    let child_ancestors = match &ground_args {
                        Some(args) => Some(std::rc::Rc::new(Ancestor {
                            pred: goal.pred,
                            args: args.clone(),
                            parent: ancestors.clone(),
                        })),
                        None => ancestors.clone(),
                    };
                    // … and body atoms in reverse, so the leftmost pops
                    // first.
                    for atom in clause.body().iter().rev() {
                        next_items.push(Item::Atom {
                            goal: Goal {
                                pred: atom.pred,
                                args: atom
                                    .args
                                    .iter()
                                    .map(|t| rename(t, self, &mut renaming))
                                    .collect(),
                            },
                            depth: depth + 1,
                            ancestors: child_ancestors.clone(),
                        });
                    }
                    let mut next_used = used.clone();
                    next_used.push(id);
                    self.prove(next_items, next_used);
                }
            }
            self.rollback(mark);
            self.bindings.truncate(vars_before);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::evaluate_with_provenance;
    use crate::extract::{extract_polynomial, ExtractOptions};

    fn both_polynomials(src: &str, query: &str, depth: usize) -> (Dnf, Dnf) {
        let program = Program::parse(src).unwrap();
        let sld = sld_polynomial_str(&program, query, SldOptions::with_max_depth(depth)).unwrap();
        let (db, graph) = evaluate_with_provenance(&program);
        let (pred, args) = worlds::parse_ground_query(&program, query).unwrap();
        let graph_dnf = match db.lookup(pred, &args) {
            Some(tuple) => extract_polynomial(&graph, tuple, ExtractOptions::with_max_depth(depth)),
            None => Dnf::zero(),
        };
        (sld, graph_dnf)
    }

    #[test]
    fn fact_query() {
        let (sld, graph) = both_polynomials("t1 0.4: p(a).", "p(a)", 4);
        assert_eq!(sld, graph);
        assert_eq!(sld.len(), 1);
    }

    #[test]
    fn non_derivable_query_is_false() {
        let program = Program::parse("t1 0.4: p(a). t2 1.0: q(b).").unwrap();
        let dnf = sld_polynomial_str(&program, "q(a)", SldOptions::default());
        // q(a) mentions only known symbols but is not derivable.
        assert!(dnf.unwrap().is_false());
    }

    #[test]
    fn acquaintance_sld_equals_graph_extraction() {
        let src = r#"
            r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
            r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
            r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
            t1 1.0: live("Steve","DC").
            t2 1.0: live("Elena","DC").
            t3 1.0: live("Mary","NYC").
            t4 0.4: like("Steve","Veggies").
            t5 0.6: like("Elena","Veggies").
            t6 1.0: know("Ben","Steve").
        "#;
        for depth in [2usize, 3, 6] {
            let (sld, graph) = both_polynomials(src, r#"know("Ben","Elena")"#, depth);
            assert_eq!(sld, graph, "depth {depth}");
        }
    }

    #[test]
    fn recursive_reachability_sld_equals_graph_extraction() {
        let src = "r1 1.0: reach(X) :- src(X).
                   r2 0.9: reach(Y) :- reach(X), edge(X,Y).
                   t0 1.0: src(a).
                   e1 0.5: edge(a,b). e2 0.6: edge(b,a). e3 0.7: edge(b,c).";
        for q in ["reach(a)", "reach(b)", "reach(c)"] {
            for depth in [1usize, 2, 3, 5] {
                let (sld, graph) = both_polynomials(src, q, depth);
                assert_eq!(sld, graph, "{q} depth {depth}");
            }
        }
    }

    #[test]
    fn constraints_prune_sld_proofs() {
        // The P1 != P2 constraint rules out the reflexive grounding.
        let src = r#"r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
                     t1 1.0: live("Steve","DC")."#;
        let program = Program::parse(src).unwrap();
        let dnf = sld_polynomial_str(&program, r#"know("Steve","Steve")"#, SldOptions::default())
            .unwrap();
        assert!(dnf.is_false());
    }

    #[test]
    fn depth_zero_only_admits_facts() {
        let src = "r1 1.0: q(X) :- p(X). t1 0.5: p(a). t2 0.7: q(a).";
        let program = Program::parse(src).unwrap();
        let dnf = sld_polynomial_str(&program, "q(a)", SldOptions::with_max_depth(0)).unwrap();
        // Only the base tuple t2 — the rule application is out of budget.
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf.monomials()[0].len(), 1);
    }

    #[test]
    fn trust_case_study_sld_equals_graph_extraction() {
        let src = "r1 1.0: trustPath(P1,P2) :- trust(P1,P2).
                   r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1 != P3.
                   r3 0.8: mutualTrustPath(P1,P2) :- trustPath(P1,P2), trustPath(P2,P1).
                   t1 0.9: trust(1,2). t2 0.9: trust(2,1). t3 0.65: trust(1,13).
                   t4 0.75: trust(2,6). t5 0.7: trust(6,2). t6 0.6: trust(13,2).";
        for depth in [3usize, 5, 8] {
            let (sld, graph) = both_polynomials(src, "mutualTrustPath(1,6)", depth);
            assert_eq!(sld, graph, "depth {depth}");
        }
    }

    #[test]
    fn random_programs_sld_equals_graph_extraction() {
        use p3_datalog::program::Program;
        // Reuse the workloads generator via source text to avoid a cyclic
        // dev-dependency: small seeds of the same shape.
        for seed in 0..8u64 {
            let src = tiny_random_program(seed);
            let program = Program::parse(&src).unwrap();
            let (db, graph) = evaluate_with_provenance(&program);
            let syms = program.symbols();
            for pred in db.predicates() {
                let rel = db.relation(pred).unwrap();
                for &t in rel.tuples() {
                    let query = format!("{}", db.display_tuple(t, syms));
                    for depth in [2usize, 4] {
                        let sld =
                            sld_polynomial_str(&program, &query, SldOptions::with_max_depth(depth))
                                .unwrap();
                        let ext =
                            extract_polynomial(&graph, t, ExtractOptions::with_max_depth(depth));
                        assert_eq!(sld, ext, "seed {seed} {query} depth {depth}\n{src}");
                    }
                }
            }
        }
    }

    /// A tiny deterministic random-program generator (kept local: the
    /// `p3-workloads` generator lives upstream of this crate).
    fn tiny_random_program(seed: u64) -> String {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = |n: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % n
        };
        let mut src = String::new();
        for i in 0..5 {
            let a = next(3);
            let b = next(3);
            let p = (next(100) as f64) / 100.0;
            src.push_str(&format!("f{i} {p}: e({a},{b}).\n"));
        }
        src.push_str("r0 0.9: p0(X,Y) :- e(X,Y).\n");
        match next(3) {
            0 => src.push_str("r1 0.8: p0(X,Z) :- e(X,Y), p0(Y,Z).\n"),
            1 => src.push_str("r1 0.8: p0(X,Z) :- p0(X,Y), e(Y,Z), X != Z.\n"),
            _ => src.push_str("r1 0.8: p1(X,Y) :- p0(X,Y), e(Y,X).\n"),
        }
        src
    }
}
