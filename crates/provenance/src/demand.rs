//! Query-directed (demand) evaluation with provenance mapped back onto the
//! source program.
//!
//! [`evaluate_query_with_provenance`] magic-transforms the program for one
//! ground query (see [`p3_datalog::transform`]), evaluates the transformed
//! program with capture, and then *un-rewrites* the result: magic tuples and
//! magic rules are dropped, guarded-variant firings are projected onto their
//! source rules (the demand guard is stripped from each body), and the
//! surviving tuples are re-interned into a clean database that speaks only
//! the source program's predicates.
//!
//! The resulting graph is *content-identical* to the query-reachable
//! fragment of the naive-evaluation graph: the same source tuples, the same
//! source-rule executions, the same base assertions (tuple ids differ, being
//! assigned in a different derivation order). Every downstream consumer —
//! polynomial extraction, explanations, DOT rendering — therefore produces
//! the same answers it would against the full naive graph, while the engine
//! only ever derived the query-relevant portion of the model.
//!
//! One source grounding can fire in several adornment variants (the same
//! rule guarded by different demand patterns), so the projection dedups rule
//! executions; the naive engine's exactly-once discipline does not survive
//! the transformation.

use crate::capture::CaptureSink;
use crate::graph::{Derivation, ProvGraph};
use p3_datalog::ast::Const;
use p3_datalog::engine::{Database, Engine, EngineStats, TupleId};
use p3_datalog::explain::{self, ExplainPlan};
use p3_datalog::program::Program;
use p3_datalog::symbol::Symbol;
use p3_datalog::transform::{magic_transform, TransformError, TransformStats};

/// Counters describing one demand evaluation.
#[derive(Clone, Copy, Default, Debug)]
pub struct DemandStats {
    /// Transformation counters (adornments, variants, magic rules).
    pub transform: TransformStats,
    /// Engine counters over the *transformed* program (magic included).
    pub engine: EngineStats,
    /// Source-program tuples surviving the projection (base + derived).
    pub relevant_tuples: usize,
    /// Magic (demand) tuples dropped by the projection.
    pub magic_tuples: usize,
}

/// The result of one demand evaluation: a database and provenance graph
/// over the *source* program's predicates and clause ids.
pub struct DemandEvaluation {
    /// Clean database: only source-program tuples, re-interned densely.
    pub db: Database,
    /// Provenance over clean tuple ids and source clause ids.
    pub graph: ProvGraph,
    /// Evaluation counters.
    pub stats: DemandStats,
    /// Per-rule cost attribution, projected onto source clauses (magic
    /// work in the plan's `magic` bucket).
    pub plan: ExplainPlan,
}

/// Magic-transforms `program` for the ground query `pred(args)`, evaluates
/// with provenance, and projects the result back onto the source program.
pub fn evaluate_query_with_provenance(
    program: &Program,
    pred: Symbol,
    args: &[Const],
) -> Result<DemandEvaluation, TransformError> {
    let mut span = p3_obs::span::span("provenance.demand");
    let dp = magic_transform(program, pred, args)?;

    let mut sink = CaptureSink::new();
    let mut engine = Engine::new(&dp.program);
    engine.set_mode_label("demand");
    let raw_db = engine.run(&mut sink);
    let raw = sink.into_graph();

    // Re-intern the non-magic tuples in id order: clean ids stay dense and
    // insertion-ordered, exactly as a direct evaluation would produce.
    let mut db = Database::with_symbols(program.symbols().clone());
    let mut map: Vec<Option<TupleId>> = Vec::with_capacity(raw_db.len());
    for i in 0..raw_db.len() {
        let t = raw_db.tuple(TupleId(i as u32));
        if dp.is_magic(t.pred) {
            map.push(None);
        } else {
            let (clean_id, _) = db.insert(t.pred, t.args.clone());
            map.push(Some(clean_id));
        }
    }

    // Project derivations onto the source program: skip magic heads, map
    // base facts and guarded variants through `original_clause`, strip the
    // guard (always body position 0 of a variant), and dedup.
    let mut graph = ProvGraph::new();
    for i in 0..raw_db.len() {
        let t = TupleId(i as u32);
        let Some(clean_head) = map[i] else {
            continue;
        };
        for d in raw.derivations(t) {
            match *d {
                Derivation::Base(clause) => {
                    let orig = dp
                        .original_clause(clause)
                        .expect("non-magic base facts come from source fact clauses");
                    graph.add_base(orig, clean_head);
                }
                Derivation::Rule(e) => {
                    let orig = dp
                        .original_clause(raw.exec_rule(e))
                        .expect("non-magic heads are derived by guarded variants");
                    let body: Vec<TupleId> = raw.exec_body(e)[1..]
                        .iter()
                        .map(|&b| map[b.index()].expect("variant bodies hold no magic tuples"))
                        .collect();
                    graph.add_exec(orig, clean_head, &body);
                }
            }
        }
    }

    let stats = DemandStats {
        transform: dp.stats,
        engine: engine.stats(),
        relevant_tuples: db.len(),
        magic_tuples: raw_db.len() - db.len(),
    };
    let plan = ExplainPlan::project_demand(&engine, &dp, program);
    explain::publish_rule_metrics(&plan, explain::METRIC_TOP_RULES);
    span.add_field("relevant_tuples", stats.relevant_tuples);
    span.add_field("magic_tuples", stats.magic_tuples);
    span.add_field("execs", graph.num_execs());
    Ok(DemandEvaluation {
        db,
        graph,
        stats,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::evaluate_with_provenance;
    use crate::extract::{extract_polynomial, ExtractOptions};
    use crate::vars::clause_vars;
    use p3_datalog::worlds;
    use std::collections::BTreeSet;

    const TRUST: &str = "
        r1 1.0: trustPath(P1,P2) :- trust(P1,P2).
        r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1 != P3.
        r3 0.8: mutualTrustPath(P1,P2) :- trustPath(P1,P2), trustPath(P2,P1).
        t1 0.9: trust(1,2).
        t2 0.9: trust(2,1).
        t3 0.65: trust(1,13).
        t4 0.75: trust(2,6).
        t5 0.7: trust(6,2).
        t6 0.6: trust(13,2).
    ";

    /// Graph signature with tuples rendered as text and only the portion
    /// reachable from `root` retained, so graphs over databases with
    /// different tuple-id assignments compare structurally.
    fn reachable_signature(
        graph: &ProvGraph,
        db: &Database,
        program: &Program,
        root: TupleId,
    ) -> BTreeSet<(String, String, Vec<String>)> {
        let reachable = graph.reachable_tuples(root);
        let syms = program.symbols();
        let show = |t: TupleId| format!("{}", db.display_tuple(t, syms));
        graph
            .signature()
            .into_iter()
            .filter(|(tuple, _, _)| reachable.contains(tuple))
            .map(|(tuple, clause, body)| {
                (
                    show(tuple),
                    program.clause(clause).label.clone(),
                    body.into_iter().map(show).collect(),
                )
            })
            .collect()
    }

    fn assert_demand_agrees_with_naive(src: &str, query: &str) {
        let program = Program::parse(src).unwrap();
        let (pred, args) = worlds::parse_ground_query(&program, query).unwrap();
        let (naive_db, naive_graph) = evaluate_with_provenance(&program);
        let demand = evaluate_query_with_provenance(&program, pred, &args).unwrap();

        let naive_tuple = naive_db.lookup(pred, &args);
        let demand_tuple = demand.db.lookup(pred, &args);
        assert_eq!(naive_tuple.is_some(), demand_tuple.is_some(), "{query}");
        let (Some(nt), Some(dt)) = (naive_tuple, demand_tuple) else {
            return;
        };

        // The query-reachable provenance fragments are content-identical…
        assert_eq!(
            reachable_signature(&naive_graph, &naive_db, &program, nt),
            reachable_signature(&demand.graph, &demand.db, &program, dt),
            "{query}: provenance fragments diverge"
        );

        // …so the extracted polynomials (and probabilities) coincide.
        let opts = ExtractOptions::unbounded();
        let naive_dnf = extract_polynomial(&naive_graph, nt, opts);
        let demand_dnf = extract_polynomial(&demand.graph, dt, opts);
        assert_eq!(naive_dnf, demand_dnf, "{query}: DNF diverges");

        let vars = clause_vars(&program);
        let p = p3_prob::exact::probability(&naive_dnf, &vars);
        let oracle = worlds::success_probability_str(&program, query).unwrap();
        assert!((p - oracle).abs() < 1e-9, "{query}: {p} vs oracle {oracle}");
    }

    #[test]
    fn trust_case_study_all_derived_queries_agree() {
        let program = Program::parse(TRUST).unwrap();
        let (naive_db, _) = evaluate_with_provenance(&program);
        for pred_name in ["trustPath", "mutualTrustPath"] {
            let pred = program.symbols().get(pred_name).unwrap();
            for &t in naive_db.relation(pred).unwrap().tuples() {
                let stored = naive_db.tuple(t);
                let args: Vec<String> = stored
                    .args
                    .iter()
                    .map(|a| format!("{}", a.display(program.symbols())))
                    .collect();
                let query = format!("{pred_name}({})", args.join(","));
                assert_demand_agrees_with_naive(TRUST, &query);
            }
        }
    }

    #[test]
    fn underivable_query_yields_empty_relation() {
        let program = Program::parse(TRUST).unwrap();
        let pred = program.symbols().get("mutualTrustPath").unwrap();
        let args = [Const::Int(1), Const::Int(99)];
        let demand = evaluate_query_with_provenance(&program, pred, &args).unwrap();
        assert!(demand.db.lookup(pred, &args).is_none());
    }

    #[test]
    fn acquaintance_example_agrees() {
        let src = r#"
            r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
            r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
            r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
            t1 1.0: live("Steve","DC").
            t2 1.0: live("Elena","DC").
            t3 1.0: live("Mary","NYC").
            t4 0.4: like("Steve","Veggies").
            t5 0.6: like("Elena","Veggies").
            t6 1.0: know("Ben","Steve").
        "#;
        assert_demand_agrees_with_naive(src, r#"know("Ben","Elena")"#);
    }

    #[test]
    fn multi_adornment_rederivations_are_deduped() {
        // p(a,a) is demanded through both p^bf (first body atom) and p^bb
        // (second); its single source grounding fires in both variants and
        // must appear once in the projected graph.
        let src = "
            r0 0.5: q(X) :- p(X,Y), p(Y,X).
            rp 0.9: p(A,B) :- e(A,B).
            e1 0.7: e(a,a).
        ";
        let program = Program::parse(src).unwrap();
        let (pred, args) = worlds::parse_ground_query(&program, "q(a)").unwrap();
        let demand = evaluate_query_with_provenance(&program, pred, &args).unwrap();
        let p = program.symbols().get("p").unwrap();
        let a = Const::Sym(program.symbols().get("a").unwrap());
        let paa = demand.db.lookup(p, &[a, a]).unwrap();
        assert_eq!(demand.graph.derivations(paa).len(), 1);
        assert_demand_agrees_with_naive(src, "q(a)");
    }

    #[test]
    fn demand_prunes_irrelevant_derivations() {
        // Line graph: naive derives all O(n^2) paths; demand for one
        // endpoint pair derives only the paths into the target.
        let mut src = String::from(
            "r1 0.9: path(X,Y) :- edge(X,Y).
             r2 0.9: path(X,Z) :- edge(X,Y), path(Y,Z).\n",
        );
        for i in 0..12 {
            src.push_str(&format!("e{i} 0.5: edge({i},{}).\n", i + 1));
        }
        let program = Program::parse(&src).unwrap();
        let (pred, args) = worlds::parse_ground_query(&program, "path(0,12)").unwrap();
        let (naive_db, _) = evaluate_with_provenance(&program);
        let demand = evaluate_query_with_provenance(&program, pred, &args).unwrap();
        assert!(demand.stats.relevant_tuples < naive_db.len());
        assert_demand_agrees_with_naive(&src, "path(0,12)");
    }
}
