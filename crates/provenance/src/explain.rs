//! Textual rendering of derivations — the console form of an Explanation
//! Query's output.

use crate::graph::{Derivation, ProvGraph};
use p3_datalog::engine::{Database, TupleId};
use p3_datalog::program::Program;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders the derivations of `root` as an indented tree.
///
/// Cyclic back-references are printed as `(cycle back to <tuple>)` rather
/// than expanded; `max_depth` (rule nestings) truncates deep derivations
/// with `(depth limit)`.
pub fn explain(
    graph: &ProvGraph,
    db: &Database,
    program: &Program,
    root: TupleId,
    max_depth: Option<usize>,
) -> String {
    let mut out = String::new();
    let mut path = HashSet::new();
    render(graph, db, program, root, 0, max_depth, &mut path, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn render(
    graph: &ProvGraph,
    db: &Database,
    program: &Program,
    tuple: TupleId,
    depth: usize,
    max_depth: Option<usize>,
    path: &mut HashSet<TupleId>,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let syms = program.symbols();
    let _ = writeln!(out, "{indent}{}", db.display_tuple(tuple, syms));
    if max_depth.is_some_and(|m| depth >= m) {
        let _ = writeln!(out, "{indent}  (depth limit)");
        return;
    }
    path.insert(tuple);
    for d in graph.derivations(tuple) {
        match d {
            Derivation::Base(c) => {
                let clause = program.clause(*c);
                let _ = writeln!(
                    out,
                    "{indent}  = base tuple {} (p={})",
                    clause.label, clause.prob
                );
            }
            Derivation::Rule(e) => {
                let exec = graph.exec(*e);
                let clause = program.clause(exec.rule);
                let _ = writeln!(
                    out,
                    "{indent}  <- rule {} (p={})",
                    clause.label, clause.prob
                );
                for &b in exec.body.iter() {
                    if path.contains(&b) {
                        let _ = writeln!(
                            out,
                            "{indent}    (cycle back to {})",
                            db.display_tuple(b, syms)
                        );
                    } else {
                        render(graph, db, program, b, depth + 2, max_depth, path, out);
                    }
                }
            }
        }
    }
    path.remove(&tuple);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::evaluate_with_provenance;

    #[test]
    fn explains_a_two_level_derivation() {
        let p = Program::parse(
            "r1 0.8: q(X) :- p(X).
             t1 0.5: p(a).",
        )
        .unwrap();
        let (db, g) = evaluate_with_provenance(&p);
        let q = p.symbols().get("q").unwrap();
        let a = p3_datalog::ast::Const::Sym(p.symbols().get("a").unwrap());
        let qa = db.lookup(q, &[a]).unwrap();
        let text = explain(&g, &db, &p, qa, None);
        assert!(text.contains("q(a)"));
        assert!(text.contains("<- rule r1 (p=0.8)"));
        assert!(text.contains("= base tuple t1 (p=0.5)"));
    }

    #[test]
    fn marks_cycles_instead_of_looping() {
        let p = Program::parse(
            "r1 1.0: reach(X) :- src(X).
             r2 1.0: reach(Y) :- reach(X), edge(X,Y).
             t0 1.0: src(a).
             e1 0.5: edge(a,b). e2 0.5: edge(b,a).",
        )
        .unwrap();
        let (db, g) = evaluate_with_provenance(&p);
        let reach = p.symbols().get("reach").unwrap();
        let a = p3_datalog::ast::Const::Sym(p.symbols().get("a").unwrap());
        let ra = db.lookup(reach, &[a]).unwrap();
        let text = explain(&g, &db, &p, ra, None);
        assert!(text.contains("(cycle back to"), "{text}");
    }

    #[test]
    fn depth_limit_truncates() {
        let p = Program::parse(
            "r1 1.0: reach(X) :- src(X).
             r2 1.0: reach(Y) :- reach(X), edge(X,Y).
             t0 1.0: src(a).
             e1 0.5: edge(a,b). e2 0.5: edge(b,c).",
        )
        .unwrap();
        let (db, g) = evaluate_with_provenance(&p);
        let reach = p.symbols().get("reach").unwrap();
        let c = p3_datalog::ast::Const::Sym(p.symbols().get("c").unwrap());
        let rc = db.lookup(reach, &[c]).unwrap();
        let text = explain(&g, &db, &p, rc, Some(1));
        assert!(text.contains("(depth limit)"), "{text}");
    }
}
