//! Lightweight hierarchical spans with a ring-buffer collector.
//!
//! Collection is off by default: [`span`] costs one relaxed atomic load
//! and returns an inert guard. Binaries that want tracing call
//! [`set_enabled`]`(true)` (`p3-serve` does this at startup; the `p3`
//! CLI and bench binaries do it for `--trace-out`).
//!
//! While enabled, each guard records its name, start time, duration,
//! thread, parent and `key=value` fields. Parentage is tracked through a
//! thread-local "current span" stack; [`child_of`] grafts a span onto an
//! explicit parent id instead, which is how a request's root span
//! (opened on the connection handler thread) adopts the execution span
//! opened on a worker thread.
//!
//! Finished spans land in a bounded global ring (oldest dropped first).
//! [`recent_roots`] rebuilds the most recent span trees for the service
//! `trace` op; [`chrome_trace_json`] renders the whole ring as Chrome
//! trace-event JSON for chrome://tracing.
//!
//! While enabled, each thread additionally maintains a stack of its *live*
//! (unfinished) span names, published through [`live_stacks`] — the raw
//! material of the sampling wall-clock profiler in [`crate::profile`].

use std::cell::{Cell, OnceCell};
use std::collections::VecDeque;
use std::fmt::Display;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

/// Maximum finished spans retained; older records are dropped.
const RING_CAP: usize = 16 * 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Id of the innermost live span on this thread (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// Small stable per-thread id for trace output (0 = unassigned).
    static TID: Cell<u64> = const { Cell::new(0) };
    /// This thread's stack of *live* span names, shared with the sampling
    /// profiler through [`live_stacks`].
    static LIVE: OnceCell<Arc<LiveStack>> = const { OnceCell::new() };
}

/// The names of the spans currently open on one thread, innermost last.
type LiveStack = Mutex<Vec<&'static str>>;

/// The global live-stack registry's entries: `(thread id, stack)`.
type LiveRegistry = Mutex<Vec<(u64, Weak<LiveStack>)>>;

/// Registry of every thread's live-span stack. Entries are weak: a stack
/// dies with its thread and is pruned on the next [`live_stacks`] call.
fn live_registry() -> &'static LiveRegistry {
    static REGISTRY: OnceLock<LiveRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Runs `f` on this thread's live-span stack, registering it globally on
/// first use.
fn with_live_stack<R>(f: impl FnOnce(&LiveStack) -> R) -> R {
    LIVE.with(|cell| {
        let stack = cell.get_or_init(|| {
            let stack = Arc::new(Mutex::new(Vec::new()));
            live_registry()
                .lock()
                .unwrap()
                .push((thread_id(), Arc::downgrade(&stack)));
            stack
        });
        f(stack)
    })
}

/// A point-in-time snapshot of every thread's open spans: `(thread id,
/// span names outermost→innermost)`. Threads with no open span are
/// skipped; dead threads are pruned. This is the input of the sampling
/// wall-clock profiler in [`crate::profile`].
pub fn live_stacks() -> Vec<(u64, Vec<&'static str>)> {
    let mut registry = live_registry().lock().unwrap();
    let mut out = Vec::new();
    registry.retain(|(tid, weak)| match weak.upgrade() {
        Some(stack) => {
            let names = stack.lock().unwrap();
            if !names.is_empty() {
                out.push((*tid, names.clone()));
            }
            true
        }
        None => false,
    });
    out
}

/// Turns span collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span collection is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonic process clock origin; all span times are µs since this.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

fn thread_id() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// A finished span as stored in the ring.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (never 0).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Static span name, e.g. `"request"` or `"provenance.extract"`.
    pub name: &'static str,
    /// Start, µs since the process trace epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Small per-thread id (for trace viewers).
    pub tid: u64,
    /// Attached `key=value` annotations.
    pub fields: Vec<(&'static str, String)>,
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

struct SpanData {
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    /// CURRENT value to restore when this guard drops.
    prev: u64,
    fields: Vec<(&'static str, String)>,
}

/// RAII span guard: records itself into the ring when dropped. Inert
/// (and nearly free) while collection is disabled.
pub struct Span {
    data: Option<SpanData>,
}

impl Span {
    fn start(name: &'static str, parent: u64) -> Span {
        if !enabled() {
            return Span { data: None };
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT.with(|c| {
            let prev = c.get();
            c.set(id);
            prev
        });
        with_live_stack(|s| s.lock().unwrap().push(name));
        Span {
            data: Some(SpanData {
                id,
                parent,
                name,
                start_us: now_us(),
                prev,
                fields: Vec::new(),
            }),
        }
    }

    /// This span's id, or 0 when collection is disabled. Pass it to
    /// [`child_of`] to parent work done on another thread.
    pub fn id(&self) -> u64 {
        self.data.as_ref().map_or(0, |d| d.id)
    }

    /// Attaches a `key=value` annotation (no-op while disabled).
    pub fn add_field(&mut self, key: &'static str, value: impl Display) {
        if let Some(data) = self.data.as_mut() {
            data.fields.push((key, value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        CURRENT.with(|c| c.set(data.prev));
        with_live_stack(|s| {
            s.lock().unwrap().pop();
        });
        let record = SpanRecord {
            id: data.id,
            parent: data.parent,
            name: data.name,
            start_us: data.start_us,
            dur_us: now_us().saturating_sub(data.start_us),
            tid: thread_id(),
            fields: data.fields,
        };
        let mut ring = ring().lock().unwrap();
        if ring.len() == RING_CAP {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

/// Opens a span as a child of the innermost live span on this thread
/// (a root if there is none).
pub fn span(name: &'static str) -> Span {
    let parent = if enabled() {
        CURRENT.with(Cell::get)
    } else {
        0
    };
    Span::start(name, parent)
}

/// Opens a span under an explicit parent id (0 for a root). This is the
/// cross-thread hook: the parent guard lives on another thread and its
/// id travelled with the work item.
pub fn child_of(name: &'static str, parent: u64) -> Span {
    Span::start(name, parent)
}

/// Clears the ring (tests and fresh trace captures).
pub fn clear() {
    ring().lock().unwrap().clear();
}

/// Copies out every finished span currently in the ring, oldest first.
pub fn snapshot() -> Vec<SpanRecord> {
    ring().lock().unwrap().iter().cloned().collect()
}

/// A reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanTree>,
}

fn build_tree(record: &SpanRecord, all: &[SpanRecord]) -> SpanTree {
    let mut children: Vec<SpanTree> = all
        .iter()
        .filter(|r| r.parent == record.id)
        .map(|r| build_tree(r, all))
        .collect();
    children.sort_by_key(|t| t.record.start_us);
    SpanTree {
        record: record.clone(),
        children,
    }
}

/// The `n` most recent root spans (optionally only those named `name`)
/// as fully reconstructed trees, most recent first. Children always
/// finish before their parent, so a root present in the ring normally
/// has its whole subtree present too (barring ring overflow).
pub fn recent_roots(name: Option<&str>, n: usize) -> Vec<SpanTree> {
    let all = snapshot();
    let mut roots: Vec<&SpanRecord> = all
        .iter()
        .filter(|r| r.parent == 0 && name.is_none_or(|want| r.name == want))
        .collect();
    roots.sort_by_key(|r| std::cmp::Reverse(r.start_us));
    roots
        .into_iter()
        .take(n)
        .map(|r| build_tree(r, &all))
        .collect()
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_event(out: &mut String, record: &SpanRecord) {
    out.push_str("{\"name\":\"");
    escape_json(record.name, out);
    out.push_str("\",\"ph\":\"X\",\"cat\":\"p3\",\"pid\":1,\"tid\":");
    out.push_str(&record.tid.to_string());
    out.push_str(",\"ts\":");
    out.push_str(&record.start_us.to_string());
    out.push_str(",\"dur\":");
    out.push_str(&record.dur_us.to_string());
    out.push_str(",\"args\":{\"span_id\":\"");
    out.push_str(&record.id.to_string());
    out.push_str("\",\"parent_id\":\"");
    out.push_str(&record.parent.to_string());
    out.push('"');
    for (key, value) in &record.fields {
        out.push_str(",\"");
        escape_json(key, out);
        out.push_str("\":\"");
        escape_json(value, out);
        out.push('"');
    }
    out.push_str("}}");
}

fn render_chrome<'a>(records: impl IntoIterator<Item = &'a SpanRecord>) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, record) in records.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_event(&mut out, record);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders every span in the ring as Chrome trace-event JSON ("complete"
/// `ph:"X"` events), loadable in chrome://tracing or Perfetto.
pub fn chrome_trace_json() -> String {
    let all = snapshot();
    render_chrome(all.iter())
}

/// Renders only the given span trees (e.g. from [`recent_roots`]) as
/// Chrome trace-event JSON — the admin plane's `GET /traces` payload.
pub fn chrome_trace_json_for(trees: &[SpanTree]) -> String {
    fn walk<'t>(tree: &'t SpanTree, out: &mut Vec<&'t SpanRecord>) {
        out.push(&tree.record);
        for child in &tree.children {
            walk(child, out);
        }
    }
    let mut records = Vec::new();
    for tree in trees {
        walk(tree, &mut records);
    }
    records.sort_by_key(|r| r.start_us);
    render_chrome(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span tests share the global ring, so they run under one lock.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap()
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = serial();
        set_enabled(false);
        clear();
        let mut s = span("noop");
        assert_eq!(s.id(), 0);
        s.add_field("k", 1);
        drop(s);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn nesting_tracks_parentage_through_the_thread_local() {
        let _guard = serial();
        set_enabled(true);
        clear();
        {
            let outer = span("outer");
            let outer_id = outer.id();
            assert_ne!(outer_id, 0);
            {
                let inner = span("inner");
                assert_ne!(inner.id(), outer_id);
            }
            let sibling = span("sibling");
            drop(sibling);
        }
        set_enabled(false);
        let all = snapshot();
        assert_eq!(all.len(), 3);
        let outer = all.iter().find(|r| r.name == "outer").unwrap();
        let inner = all.iter().find(|r| r.name == "inner").unwrap();
        let sibling = all.iter().find(|r| r.name == "sibling").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id);
    }

    #[test]
    fn child_of_adopts_work_on_another_thread() {
        let _guard = serial();
        set_enabled(true);
        clear();
        let root = span("request");
        let root_id = root.id();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut exec = child_of("execute", root_id);
                exec.add_field("class", "probability");
            });
        });
        drop(root);
        set_enabled(false);

        let trees = recent_roots(Some("request"), 10);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].record.id, root_id);
        assert_eq!(trees[0].children.len(), 1);
        let exec = &trees[0].children[0];
        assert_eq!(exec.record.name, "execute");
        assert_eq!(exec.record.fields[0], ("class", "probability".to_string()));
        assert_ne!(exec.record.tid, trees[0].record.tid);
    }

    #[test]
    fn recent_roots_returns_most_recent_first_and_honours_n() {
        let _guard = serial();
        set_enabled(true);
        clear();
        for _ in 0..5 {
            drop(span("request"));
            drop(span("other"));
        }
        set_enabled(false);
        let trees = recent_roots(Some("request"), 3);
        assert_eq!(trees.len(), 3);
        assert!(trees[0].record.start_us >= trees[1].record.start_us);
        assert!(trees.iter().all(|t| t.record.name == "request"));
        let unfiltered = recent_roots(None, 100);
        assert_eq!(unfiltered.len(), 10);
    }

    #[test]
    fn live_stacks_tracks_open_spans_and_unwinds() {
        let _guard = serial();
        set_enabled(true);
        clear();
        let own_tid = thread_id();
        {
            let _outer = span("outer");
            let _inner = span("inner");
            let ours: Vec<_> = live_stacks()
                .into_iter()
                .filter(|(tid, _)| *tid == own_tid)
                .collect();
            assert_eq!(ours.len(), 1);
            assert_eq!(ours[0].1, vec!["outer", "inner"]);
        }
        // Closed spans are gone; an empty stack is not reported.
        assert!(!live_stacks().iter().any(|(tid, _)| *tid == own_tid));
        set_enabled(false);
        // Disabled spans never touch the stack.
        let _noop = span("noop");
        assert!(!live_stacks().iter().any(|(tid, _)| *tid == own_tid));
    }

    #[test]
    fn chrome_trace_json_for_renders_only_the_given_trees() {
        let _guard = serial();
        set_enabled(true);
        clear();
        {
            let root = span("request");
            let _child = child_of("execute", root.id());
        }
        drop(span("unrelated"));
        set_enabled(false);
        let trees = recent_roots(Some("request"), 10);
        let json = chrome_trace_json_for(&trees);
        assert!(json.contains("\"name\":\"request\""));
        assert!(json.contains("\"name\":\"execute\""));
        assert!(!json.contains("\"name\":\"unrelated\""));
    }

    #[test]
    fn chrome_trace_json_is_wellformed_and_escapes_fields() {
        let _guard = serial();
        set_enabled(true);
        clear();
        {
            let mut s = span("quoted");
            s.add_field("query", "know(\"Ben\",\"Elena\")");
        }
        set_enabled(false);
        let json = chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"quoted\""));
        assert!(json.contains("know(\\\"Ben\\\",\\\"Elena\\\")"));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        // Balanced braces/brackets outside strings ⇒ parseable shape.
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in json.chars() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
