//! Process self-metrics and build identity for the Prometheus exposition.
//!
//! * `p3_build_info{version,git}` — the classic constant-`1` info gauge;
//!   the interesting data rides in the labels.
//! * `p3_process_resident_memory_bytes` — RSS from `/proc/self/statm`
//!   (fallback: `VmRSS` in `/proc/self/status`).
//! * `p3_process_open_fds` — entry count of `/proc/self/fd`.
//! * `p3_process_uptime_seconds` — seconds since [`init`].
//!
//! `/proc` readers degrade to "absent sample" off Linux: the gauges stay
//! at their last value (0 before the first refresh) rather than lying.
//! Call [`init`] once at boot and [`refresh`] from any periodic tick
//! (the service's gauge-refresh loop).

use std::sync::OnceLock;
use std::time::Instant;

static STARTED: OnceLock<Instant> = OnceLock::new();

/// Registers the build-info and process gauge families and starts the
/// uptime clock. `version` and `git` become labels on `p3_build_info`;
/// pass `"unknown"` when a git id is not baked in.
pub fn init(version: &str, git: &str) {
    STARTED.get_or_init(Instant::now);
    let labels = crate::metrics::render_labels(&[("version", version), ("git", git)]);
    crate::metrics::labeled_gauge(
        "p3_build_info",
        "Build identity; constant 1 with version/git labels",
        &labels,
    )
    .set(1);
    rss_gauge();
    fds_gauge();
    uptime_gauge();
    refresh();
}

fn rss_gauge() -> std::sync::Arc<crate::metrics::Gauge> {
    crate::metrics::gauge(
        "p3_process_resident_memory_bytes",
        "Resident set size of this process in bytes",
    )
}

fn fds_gauge() -> std::sync::Arc<crate::metrics::Gauge> {
    crate::metrics::gauge(
        "p3_process_open_fds",
        "Open file descriptors held by this process",
    )
}

fn uptime_gauge() -> std::sync::Arc<crate::metrics::Gauge> {
    crate::metrics::gauge(
        "p3_process_uptime_seconds",
        "Seconds since process metrics were initialised",
    )
}

/// Re-samples RSS, open fds, and uptime into their gauges. Cheap enough
/// for a once-per-second tick; no-ops gracefully where /proc is absent.
pub fn refresh() {
    if let Some(rss) = resident_bytes() {
        rss_gauge().set(rss as i64);
    }
    if let Some(fds) = open_fds() {
        fds_gauge().set(fds as i64);
    }
    if let Some(started) = STARTED.get() {
        uptime_gauge().set(started.elapsed().as_secs() as i64);
    }
}

/// Resident set size in bytes, from `/proc/self/statm` (second field,
/// pages) with a `/proc/self/status` `VmRSS:` fallback.
pub fn resident_bytes() -> Option<u64> {
    if let Ok(statm) = std::fs::read_to_string("/proc/self/statm") {
        if let Some(pages) = statm.split_whitespace().nth(1) {
            if let Ok(pages) = pages.parse::<u64>() {
                return Some(pages * page_size());
            }
        }
    }
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Open file descriptor count, from `/proc/self/fd`. The readdir itself
/// briefly holds one fd; that self-count is accepted noise.
pub fn open_fds() -> Option<u64> {
    let entries = std::fs::read_dir("/proc/self/fd").ok()?;
    Some(entries.filter(|e| e.is_ok()).count() as u64)
}

/// Seconds since [`init`] was first called; 0 before that.
pub fn uptime_seconds() -> u64 {
    STARTED.get().map(|s| s.elapsed().as_secs()).unwrap_or(0)
}

fn page_size() -> u64 {
    // Linux x86-64/aarch64 default. A wrong guess skews RSS by a constant
    // factor only; the fallback path via VmRSS (kB) is exact.
    4096
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_readers_report_plausible_values() {
        // These run on Linux in CI; degrade to a no-op elsewhere.
        if std::path::Path::new("/proc/self").exists() {
            let rss = resident_bytes().expect("statm readable");
            assert!(rss > 1 << 20, "RSS under 1 MiB is implausible: {rss}");
            let fds = open_fds().expect("fd dir readable");
            assert!(fds >= 3, "stdio alone is 3 fds: {fds}");
        }
    }

    #[test]
    fn init_publishes_build_info_and_gauges() {
        init("0.1.0-test", "deadbeef");
        let text = crate::metrics::prometheus_text();
        assert!(
            text.contains("p3_build_info{git=\"deadbeef\",version=\"0.1.0-test\"} 1")
                || text.contains("p3_build_info{version=\"0.1.0-test\",git=\"deadbeef\"} 1"),
            "missing build info:\n{text}"
        );
        assert!(text.contains("p3_process_uptime_seconds"));
        if std::path::Path::new("/proc/self").exists() {
            assert!(text.contains("p3_process_resident_memory_bytes"));
            assert!(text.contains("p3_process_open_fds"));
        }
    }
}
