//! Observability primitives for the P3 workspace.
//!
//! Std-only (no registry deps) so every crate — including the otherwise
//! dependency-free `p3-datalog` — can link it without cycles. Three
//! layers, each usable on its own:
//!
//! * [`log`]: a leveled logger controlled by the `P3_LOG` environment
//!   variable, emitting structured `key=value` lines to stderr via the
//!   [`error!`], [`warn!`], [`info!`] and [`debug!`] macros.
//! * [`metrics`]: a process-global registry of relaxed-atomic counters,
//!   gauges and log₂-bucketed histograms, cheap enough for hot paths and
//!   rendered on demand as Prometheus text exposition.
//! * [`span`]: lightweight hierarchical spans behind a global on/off
//!   gate (default off → one relaxed atomic load per call site), with a
//!   thread-safe ring-buffer collector, span-tree reconstruction, and
//!   Chrome trace-event JSON export for chrome://tracing.
//! * [`profile`]: a sampling wall-clock profiler over the live span
//!   stacks, emitting folded-stack lines for `flamegraph.pl`/speedscope
//!   (the admin plane's `GET /profile` endpoint).
//! * [`slo`]: a rolling-window SLO engine — per-class latency
//!   objectives, multi-window burn rates, error-budget accounting
//!   (the admin plane's `GET /slo` endpoint and `/readyz` gate).
//! * [`process`]: `p3_build_info` and process self-metrics (RSS, open
//!   fds, uptime) sampled from `/proc/self`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod process;
pub mod profile;
pub mod slo;
pub mod span;
