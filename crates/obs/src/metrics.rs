//! A process-global metrics registry with Prometheus text exposition.
//!
//! Three instrument kinds, all updated with relaxed atomics so hot paths
//! pay a few nanoseconds per update:
//!
//! * [`Counter`] — monotone `u64`.
//! * [`Gauge`] — signed point-in-time value, typically refreshed at
//!   scrape time for resident-size style readings.
//! * [`Histogram`] — log₂-bucketed distribution (powers of two up to
//!   `2^26`, then `+Inf`), suited to microsecond latencies and formula
//!   node counts alike.
//!
//! Instruments are registered once by `(name, labels)` and shared via
//! `Arc`; call sites cache the handle in a `OnceLock` static — the
//! [`crate::counter!`], [`crate::gauge!`] and [`crate::histogram!`]
//! macros do exactly that. [`prometheus_text`] renders every registered
//! instrument in Prometheus text exposition format 0.0.4.
//!
//! [`RingHistogram`] is the odd one out: a bounded window of recent raw
//! samples supporting exact quantiles over that window. It backs the
//! service's per-class latency reporting, where "p99 over the last 1024
//! requests" is more useful than an all-time distribution.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: `le=1, 2, 4, …, 2^26` plus `+Inf`.
const BUCKETS: usize = 28;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram: bucket `i` counts observations with
/// `value <= 2^i`, with one final `+Inf` overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(value: u64) -> usize {
        // Smallest i with value <= 2^i, capped at the +Inf bucket.
        let idx = (64 - value.saturating_sub(1).leading_zeros()) as usize;
        idx.min(BUCKETS - 1)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Renders the `_bucket`/`_sum`/`_count` sample lines. `labels` is
    /// either empty or a pre-rendered `key="value"` list to merge with
    /// the `le` label.
    fn render(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = if i == BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                (1u64 << i).to_string()
            };
            if labels.is_empty() {
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            } else {
                out.push_str(&format!(
                    "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}\n"
                ));
            }
        }
        let suffix = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        out.push_str(&format!("{name}_sum{suffix} {}\n", self.sum()));
        out.push_str(&format!("{name}_count{suffix} {}\n", self.count()));
    }
}

/// A bounded window of the most recent raw samples with exact quantiles
/// over that window. Unlike [`Histogram`] this takes a lock per record,
/// so use it at request granularity, not in per-tuple loops.
#[derive(Debug)]
pub struct RingHistogram {
    cap: usize,
    inner: Mutex<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    samples: Vec<u64>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
}

impl RingHistogram {
    /// Creates a window keeping the `cap` most recent samples (`cap ≥ 1`).
    pub fn new(cap: usize) -> RingHistogram {
        RingHistogram {
            cap: cap.max(1),
            inner: Mutex::new(RingInner {
                samples: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Records one sample, evicting the oldest when the window is full.
    pub fn record(&self, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        if inner.samples.len() < self.cap {
            inner.samples.push(value);
        } else {
            let slot = inner.next;
            inner.samples[slot] = value;
            inner.next = (slot + 1) % self.cap;
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().samples.len()
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact quantile over the window by nearest-rank on the sorted
    /// samples; `None` when the window is empty. `q` is clamped to
    /// `[0, 1]`: `quantile(0.0)` is the window minimum, `quantile(1.0)`
    /// the maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let mut sorted = self.inner.lock().unwrap().samples.clone();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[rank])
    }

    /// Largest sample in the window, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.inner.lock().unwrap().samples.iter().copied().max()
    }

    /// Mean of the window samples, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let inner = self.inner.lock().unwrap();
        if inner.samples.is_empty() {
            return None;
        }
        Some(inner.samples.iter().sum::<u64>() as f64 / inner.samples.len() as f64)
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    help: &'static str,
    /// Pre-rendered `key="value",…` list; empty for unlabeled instruments.
    labels: String,
    instrument: Instrument,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn register(
    name: &'static str,
    help: &'static str,
    labels: &str,
    kind: &'static str,
) -> Instrument {
    let mut entries = registry().lock().unwrap();
    if let Some(entry) = entries
        .iter()
        .find(|e| e.name == name && e.labels == labels)
    {
        assert_eq!(
            entry.instrument.kind(),
            kind,
            "metric {name} re-registered as a different kind"
        );
        return entry.instrument.clone();
    }
    let instrument = match kind {
        "counter" => Instrument::Counter(Arc::new(Counter::default())),
        "gauge" => Instrument::Gauge(Arc::new(Gauge::default())),
        _ => Instrument::Histogram(Arc::new(Histogram::default())),
    };
    entries.push(Entry {
        name,
        help,
        labels: labels.to_string(),
        instrument: instrument.clone(),
    });
    instrument
}

/// Registers (or retrieves) the unlabeled counter `name`.
pub fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
    labeled_counter(name, help, "")
}

/// Registers (or retrieves) a counter with a pre-rendered label list
/// such as `class="probability"`.
pub fn labeled_counter(name: &'static str, help: &'static str, labels: &str) -> Arc<Counter> {
    match register(name, help, labels, "counter") {
        Instrument::Counter(c) => c,
        _ => unreachable!(),
    }
}

/// Registers (or retrieves) the unlabeled gauge `name`.
pub fn gauge(name: &'static str, help: &'static str) -> Arc<Gauge> {
    labeled_gauge(name, help, "")
}

/// Registers (or retrieves) a gauge with a pre-rendered label list.
pub fn labeled_gauge(name: &'static str, help: &'static str, labels: &str) -> Arc<Gauge> {
    match register(name, help, labels, "gauge") {
        Instrument::Gauge(g) => g,
        _ => unreachable!(),
    }
}

/// Registers (or retrieves) the unlabeled histogram `name`.
pub fn histogram(name: &'static str, help: &'static str) -> Arc<Histogram> {
    labeled_histogram(name, help, "")
}

/// Registers (or retrieves) a histogram with a pre-rendered label list.
pub fn labeled_histogram(name: &'static str, help: &'static str, labels: &str) -> Arc<Histogram> {
    match register(name, help, labels, "histogram") {
        Instrument::Histogram(h) => h,
        _ => unreachable!(),
    }
}

/// Escapes a label *value* per the Prometheus text exposition rules:
/// backslash, double-quote and newline become `\\`, `\"` and `\n`. All
/// other characters pass through (label values are full UTF-8).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Caps a high-cardinality label value (a rule label, a query string) at
/// `max_bytes`, backing down to a `char` boundary so multi-byte UTF-8 is
/// never split. Pair with [`render_labels`] — capping bounds the *size*
/// of each label value, escaping keeps whatever survives well-formed.
pub fn cap_label_value(value: &str, max_bytes: usize) -> &str {
    if value.len() <= max_bytes {
        return value;
    }
    let mut end = max_bytes;
    while !value.is_char_boundary(end) {
        end -= 1;
    }
    &value[..end]
}

/// Renders a `key="value",…` label list with properly escaped values —
/// the safe way to build the `labels` argument of [`labeled_counter`] and
/// friends from runtime strings.
pub fn render_labels(pairs: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (key, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        out.push_str(&escape_label_value(value));
        out.push('"');
    }
    out
}

/// Renders every registered instrument in Prometheus text exposition
/// format (version 0.0.4). `# HELP`/`# TYPE` headers are emitted once
/// per family, followed by one sample line per label set.
pub fn prometheus_text() -> String {
    let entries = registry().lock().unwrap();
    let mut out = String::new();
    let mut order: Vec<&'static str> = Vec::new();
    for entry in entries.iter() {
        if !order.contains(&entry.name) {
            order.push(entry.name);
        }
    }
    for name in order {
        let family: Vec<&Entry> = entries.iter().filter(|e| e.name == name).collect();
        let first = family[0];
        out.push_str(&format!("# HELP {name} {}\n", first.help));
        out.push_str(&format!("# TYPE {name} {}\n", first.instrument.kind()));
        for entry in family {
            match &entry.instrument {
                Instrument::Counter(c) => {
                    let suffix = if entry.labels.is_empty() {
                        String::new()
                    } else {
                        format!("{{{}}}", entry.labels)
                    };
                    out.push_str(&format!("{name}{suffix} {}\n", c.get()));
                }
                Instrument::Gauge(g) => {
                    let suffix = if entry.labels.is_empty() {
                        String::new()
                    } else {
                        format!("{{{}}}", entry.labels)
                    };
                    out.push_str(&format!("{name}{suffix} {}\n", g.get()));
                }
                Instrument::Histogram(h) => h.render(&mut out, name, &entry.labels),
            }
        }
    }
    out
}

/// Caches and returns a `&'static Counter` for a literal name/help pair:
/// `counter!("p3_x_total", "help").inc()`.
#[macro_export]
macro_rules! counter {
    ($name:literal, $help:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::counter($name, $help))
    }};
}

/// Caches and returns a `&'static Gauge` for a literal name/help pair.
#[macro_export]
macro_rules! gauge {
    ($name:literal, $help:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::gauge($name, $help))
    }};
}

/// Caches and returns a `&'static Histogram` for a literal name/help pair.
#[macro_export]
macro_rules! histogram {
    ($name:literal, $help:literal) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::histogram($name, $help))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let a = counter("p3_obs_test_counter_total", "test counter");
        let b = counter("p3_obs_test_counter_total", "test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name must share one instrument");

        let g = gauge("p3_obs_test_gauge", "test gauge");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn histogram_buckets_are_log2_and_cumulative() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);

        let h = Histogram::default();
        h.observe(1);
        h.observe(3);
        h.observe(1_000_000_000); // lands in +Inf
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1_000_000_004);
        let mut out = String::new();
        h.render(&mut out, "x", "");
        assert!(out.contains("x_bucket{le=\"1\"} 1\n"));
        assert!(out.contains("x_bucket{le=\"4\"} 2\n"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3\n"));
        assert!(out.contains("x_count 3\n"));
    }

    #[test]
    fn labeled_instruments_render_label_sets_under_one_family() {
        let a = labeled_counter("p3_obs_test_labeled_total", "labeled", "class=\"a\"");
        let b = labeled_counter("p3_obs_test_labeled_total", "labeled", "class=\"b\"");
        a.inc();
        b.add(2);
        let text = prometheus_text();
        let helps = text.matches("# HELP p3_obs_test_labeled_total").count();
        assert_eq!(helps, 1, "one HELP line per family");
        assert!(text.contains("p3_obs_test_labeled_total{class=\"a\"} 1\n"));
        assert!(text.contains("p3_obs_test_labeled_total{class=\"b\"} 2\n"));
    }

    #[test]
    fn labeled_histogram_merges_labels_with_le() {
        let h = labeled_histogram("p3_obs_test_lhist_us", "labeled hist", "class=\"q\"");
        h.observe(2);
        let text = prometheus_text();
        assert!(text.contains("p3_obs_test_lhist_us_bucket{class=\"q\",le=\"2\"} 1\n"));
        assert!(text.contains("p3_obs_test_lhist_us_sum{class=\"q\"} 2\n"));
        assert!(text.contains("p3_obs_test_lhist_us_count{class=\"q\"} 1\n"));
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value(r#"a\b"#), r#"a\\b"#);
        assert_eq!(escape_label_value(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(escape_label_value("two\nlines"), "two\\nlines");
        assert_eq!(
            render_labels(&[("class", r#"we"ird\"#), ("shard", "0")]),
            r#"class="we\"ird\\",shard="0""#
        );
    }

    #[test]
    fn hostile_label_values_render_as_single_escaped_sample_lines() {
        // A query string is the realistic hostile input: quotes from atom
        // arguments, backslashes from escapes, newlines from raw lines.
        let hostile = "know(\"Ben\",\"Elena\")\\\nend";
        let labels = render_labels(&[("query", hostile)]);
        labeled_counter("p3_obs_test_hostile_total", "hostile labels", &labels).add(3);
        let text = prometheus_text();
        let line = text
            .lines()
            .find(|l| l.starts_with("p3_obs_test_hostile_total{"))
            .expect("sample line present");
        // One physical line: the newline in the value must be escaped.
        assert_eq!(
            line,
            "p3_obs_test_hostile_total{query=\"know(\\\"Ben\\\",\\\"Elena\\\")\\\\\\nend\"} 3"
        );
        // Unescaping the label value recovers the original input, i.e. the
        // exposition round-trips under the 0.0.4 escaping rules.
        let start = line.find("query=\"").unwrap() + "query=\"".len();
        let end = line.rfind("\"}").unwrap();
        let escaped = &line[start..end];
        let mut unescaped = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => unescaped.push('\n'),
                    Some(other) => unescaped.push(other),
                    None => panic!("dangling escape"),
                }
            } else {
                unescaped.push(c);
            }
        }
        assert_eq!(unescaped, hostile);
    }

    #[test]
    fn hostile_rule_names_cap_then_escape_into_one_sample_line() {
        // A rule label is attacker-ish input too: the program text chooses
        // it. Long labels must cap on a char boundary *before* escaping
        // (capping after could split an escape sequence), and the capped
        // remainder must still render as a single well-formed line.
        let hostile = format!("r\"evil\\\n{}é", "x".repeat(60));
        let capped = cap_label_value(&hostile, 48);
        assert!(capped.len() <= 48);
        assert!(hostile.starts_with(capped));
        // Multi-byte tail: capping backs off rather than splitting 'é'.
        let multi = format!("{}é", "x".repeat(47));
        assert_eq!(cap_label_value(&multi, 48), "x".repeat(47));
        let labels = render_labels(&[("rule", capped), ("mode", "naive")]);
        labeled_counter("p3_obs_test_rule_cap_total", "hostile rule labels", &labels).add(1);
        let text = prometheus_text();
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("p3_obs_test_rule_cap_total{"))
            .collect();
        assert_eq!(lines.len(), 1, "capped+escaped label stays one sample line");
        assert!(lines[0].ends_with("\"} 1"));
        assert!(lines[0].contains("mode=\"naive\""));
    }

    #[test]
    fn ring_histogram_empty_window_has_no_quantiles() {
        let r = RingHistogram::new(8);
        assert!(r.is_empty());
        assert_eq!(r.quantile(0.5), None);
        assert_eq!(r.max(), None);
        assert_eq!(r.mean(), None);
    }

    #[test]
    fn ring_histogram_single_sample_is_every_quantile() {
        let r = RingHistogram::new(8);
        r.record(42);
        assert_eq!(r.len(), 1);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(r.quantile(q), Some(42));
        }
        assert_eq!(r.max(), Some(42));
        assert_eq!(r.mean(), Some(42.0));
    }

    #[test]
    fn ring_histogram_wraps_and_keeps_only_recent() {
        let r = RingHistogram::new(4);
        for v in 1..=10 {
            r.record(v);
        }
        // Window holds 7..=10; the early samples are gone.
        assert_eq!(r.len(), 4);
        assert_eq!(r.quantile(0.0), Some(7));
        assert_eq!(r.quantile(1.0), Some(10));
        assert_eq!(r.max(), Some(10));
        assert_eq!(r.mean(), Some(8.5));
    }

    #[test]
    fn ring_histogram_quantiles_use_nearest_rank() {
        let r = RingHistogram::new(100);
        for v in 1..=100 {
            r.record(v);
        }
        // Nearest rank: idx = round((len-1) * q), matching the service's
        // historical quantile definition.
        assert_eq!(r.quantile(0.5), Some(51));
        assert_eq!(r.quantile(0.9), Some(90));
        assert_eq!(r.quantile(0.99), Some(99));
    }

    #[test]
    fn macro_handles_are_static_and_shared() {
        let c = crate::counter!("p3_obs_test_macro_total", "macro counter");
        c.inc();
        let c2 = crate::counter!("p3_obs_test_macro_total", "macro counter");
        assert_eq!(c2.get(), c.get());
        crate::gauge!("p3_obs_test_macro_gauge", "macro gauge").set(1);
        crate::histogram!("p3_obs_test_macro_hist", "macro hist").observe(9);
        let text = prometheus_text();
        assert!(text.contains("# TYPE p3_obs_test_macro_total counter"));
        assert!(text.contains("# TYPE p3_obs_test_macro_gauge gauge"));
        assert!(text.contains("# TYPE p3_obs_test_macro_hist histogram"));
    }
}
