//! A sampling wall-clock profiler over live span stacks.
//!
//! [`sample_folded`] polls [`crate::span::live_stacks`] at a fixed
//! interval for a bounded duration and folds what it sees into
//! `frame;frame;frame count` lines — the *folded stack* format consumed
//! directly by Brendan Gregg's `flamegraph.pl` and by speedscope. Each
//! thread's stack is prefixed with a `t<id>` frame so per-thread time is
//! separable in the flame graph; spans are the frames, so resolution is
//! bounded by how finely the pipeline is instrumented (request → execute
//! → session.* → provenance.*/prob.*).
//!
//! The profiler only sees threads with span collection enabled and at
//! least one open span — an idle worker pool yields an empty profile,
//! which is the honest answer. Sampling cost is one registry lock plus
//! one short per-thread lock per tick; the profiled threads pay nothing
//! beyond the span push/pop they already do.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Default sampling interval: 5 ms ⇒ ≈200 samples per profiled second.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(5);

/// Samples every thread's live span stack for `duration` at `interval`
/// and returns the folded-stack profile, one `stack count` line per
/// distinct stack, sorted for stable output. Empty when nothing was on
/// CPU under a span (or span collection is disabled).
pub fn sample_folded(duration: Duration, interval: Duration) -> String {
    let interval = interval.max(Duration::from_millis(1));
    let deadline = Instant::now() + duration;
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    loop {
        for (tid, names) in crate::span::live_stacks() {
            let mut key = format!("t{tid}");
            for name in names {
                key.push(';');
                key.push_str(name);
            }
            *counts.entry(key).or_insert(0) += 1;
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(interval.min(deadline.saturating_duration_since(Instant::now())));
    }
    let mut out = String::new();
    for (stack, count) in counts {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn folded_profile_captures_busy_span_stacks() {
        span::set_enabled(true);
        let stop = AtomicBool::new(false);
        let folded = std::thread::scope(|scope| {
            scope.spawn(|| {
                let _outer = span::span("profiled.outer");
                let _inner = span::span("profiled.inner");
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
            let folded = sample_folded(Duration::from_millis(100), Duration::from_millis(2));
            stop.store(true, Ordering::Relaxed);
            folded
        });
        span::set_enabled(false);
        span::clear();
        let line = folded
            .lines()
            .find(|l| l.contains("profiled.outer;profiled.inner"))
            .expect("busy thread sampled");
        // Folded format: frames joined by ';', one space, a count.
        let (stack, count) = line.rsplit_once(' ').unwrap();
        assert!(stack.starts_with('t'));
        assert!(count.parse::<u64>().unwrap() >= 1);
    }

    #[test]
    fn idle_profile_is_empty() {
        let folded = sample_folded(Duration::from_millis(5), Duration::from_millis(1));
        // Only threads with open spans appear; this test holds none.
        // (Concurrent tests may contribute lines, so assert only shape.)
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').unwrap();
            assert!(count.parse::<u64>().is_ok(), "{line}");
        }
    }
}
