//! Rolling-window SLO engine: per-class latency objectives, multi-window
//! burn rates, and error-budget accounting.
//!
//! An objective says "fraction `objective` of CLASS requests finish OK
//! within `target_ms`". Every finished request becomes one event (good
//! or bad) timestamped in unix milliseconds; timestamps are passed in by
//! the caller so tests can drive window boundaries deterministically.
//!
//! Burn rate is the classic SRE ratio: `bad_fraction / (1 − objective)`.
//! Burning at rate 1 spends exactly the error budget; rate 10 exhausts a
//! 30-day budget in 3 days. Two windows are tracked per class:
//!
//! * **fast** — 5 minutes, paging threshold 14.4 (2% of a 30-day budget
//!   in one hour). This is the window that can 503 `/readyz`.
//! * **slow** — 1 hour, ticket threshold 6.0.
//!
//! A window with fewer than [`MIN_EVENTS`] events never trips: one bad
//! request in an idle minute is not an incident. Windows are half-open
//! `(now − w, now]`, so an event exactly `w` ms old has just left.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Fast (paging) window length in milliseconds: 5 minutes.
pub const FAST_WINDOW_MS: u64 = 5 * 60 * 1000;
/// Slow (ticket) window length in milliseconds: 1 hour.
pub const SLOW_WINDOW_MS: u64 = 60 * 60 * 1000;
/// Fast-window burn rate at or above which the objective trips.
pub const FAST_BURN_TRIP: f64 = 14.4;
/// Slow-window burn rate at or above which the objective trips.
pub const SLOW_BURN_TRIP: f64 = 6.0;
/// Minimum events in a window before its burn rate can trip.
pub const MIN_EVENTS: u64 = 10;
/// Hard cap on retained events per class (memory bound).
const MAX_EVENTS: usize = 65_536;

/// One latency objective: "`objective` of `class` requests finish OK
/// within `target_ms`".
#[derive(Clone, Debug, PartialEq)]
pub struct SloConfig {
    /// Request class the objective applies to (`probability`, ...).
    pub class: String,
    /// Latency target in milliseconds.
    pub target_ms: u64,
    /// Good-request objective as a fraction in (0, 1), e.g. `0.99`.
    pub objective: f64,
}

impl SloConfig {
    /// Parses the CLI form `CLASS:TARGET_MS:OBJECTIVE`, e.g.
    /// `probability:500:0.99`.
    pub fn parse(spec: &str) -> Result<SloConfig, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let [class, target, objective] = parts.as_slice() else {
            return Err(format!(
                "bad SLO spec {spec:?}: want CLASS:TARGET_MS:OBJECTIVE"
            ));
        };
        if class.is_empty() {
            return Err(format!("bad SLO spec {spec:?}: empty class"));
        }
        let target_ms: u64 = target
            .parse()
            .map_err(|_| format!("bad SLO spec {spec:?}: target {target:?} is not an integer"))?;
        if target_ms == 0 {
            return Err(format!("bad SLO spec {spec:?}: target must be positive"));
        }
        let objective: f64 = objective.parse().map_err(|_| {
            format!("bad SLO spec {spec:?}: objective {objective:?} is not a number")
        })?;
        if !(objective > 0.0 && objective < 1.0) {
            return Err(format!(
                "bad SLO spec {spec:?}: objective must be in (0, 1)"
            ));
        }
        Ok(SloConfig {
            class: class.to_string(),
            target_ms,
            objective,
        })
    }
}

/// One window's burn accounting at a point in time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowBurn {
    /// Events inside the window.
    pub events: u64,
    /// Bad events (failed or over-target) inside the window.
    pub bad: u64,
    /// `bad_fraction / (1 − objective)`; 0.0 for an empty window.
    pub burn_rate: f64,
    /// Whether this window is at or over its trip threshold (respecting
    /// the [`MIN_EVENTS`] guard).
    pub tripped: bool,
}

/// One class objective's full status snapshot.
#[derive(Clone, Debug)]
pub struct SloStatus {
    /// The objective being reported.
    pub config: SloConfig,
    /// 5-minute window burn.
    pub fast: WindowBurn,
    /// 1-hour window burn.
    pub slow: WindowBurn,
    /// Fraction of the slow window's error budget still unspent:
    /// `1 − slow.burn_rate`, clamped below at −… no clamp — negative
    /// means the budget is overspent by that multiple.
    pub budget_remaining: f64,
}

#[derive(Clone, Copy)]
struct Event {
    ts_ms: u64,
    good: bool,
}

struct ClassTrack {
    config: SloConfig,
    events: VecDeque<Event>,
}

/// Thread-safe rolling-window SLO tracker for a fixed set of objectives.
pub struct SloEngine {
    classes: Mutex<Vec<ClassTrack>>,
}

impl SloEngine {
    /// An engine tracking `configs`. Later duplicates of a class replace
    /// earlier ones, so CLI overrides can follow built-in defaults.
    pub fn new(configs: Vec<SloConfig>) -> SloEngine {
        let mut by_class: HashMap<String, SloConfig> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for c in configs {
            if !by_class.contains_key(&c.class) {
                order.push(c.class.clone());
            }
            by_class.insert(c.class.clone(), c);
        }
        let classes = order
            .into_iter()
            .map(|name| ClassTrack {
                config: by_class.remove(&name).unwrap(),
                events: VecDeque::new(),
            })
            .collect();
        SloEngine {
            classes: Mutex::new(classes),
        }
    }

    /// The tracked objectives, in registration order.
    pub fn configs(&self) -> Vec<SloConfig> {
        self.classes
            .lock()
            .unwrap()
            .iter()
            .map(|t| t.config.clone())
            .collect()
    }

    /// Records one finished request for `class` at `now_ms`. `ok` is the
    /// request outcome; the event is *good* iff `ok` and `latency_ms`
    /// is within the class target. Classes without an objective are
    /// ignored. Timestamps may arrive slightly out of order; pruning
    /// only trusts the newest timestamp seen.
    pub fn record(&self, class: &str, now_ms: u64, ok: bool, latency_ms: u64) {
        let mut classes = self.classes.lock().unwrap();
        let Some(track) = classes.iter_mut().find(|t| t.config.class == class) else {
            return;
        };
        let good = ok && latency_ms <= track.config.target_ms;
        track.events.push_back(Event {
            ts_ms: now_ms,
            good,
        });
        // Bound memory: time-based pruning against the slow window, plus a
        // hard cap for pathological event rates.
        let cutoff = now_ms.saturating_sub(SLOW_WINDOW_MS);
        while let Some(front) = track.events.front() {
            if front.ts_ms <= cutoff || track.events.len() > MAX_EVENTS {
                track.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Snapshot of every objective's burn state at `now_ms`.
    pub fn status(&self, now_ms: u64) -> Vec<SloStatus> {
        let classes = self.classes.lock().unwrap();
        classes
            .iter()
            .map(|track| {
                let fast = window_burn(track, now_ms, FAST_WINDOW_MS, FAST_BURN_TRIP);
                let slow = window_burn(track, now_ms, SLOW_WINDOW_MS, SLOW_BURN_TRIP);
                SloStatus {
                    config: track.config.clone(),
                    fast,
                    slow,
                    budget_remaining: 1.0 - slow.burn_rate,
                }
            })
            .collect()
    }

    /// True when any objective's fast window is tripped — the signal
    /// `/readyz` turns into a 503 under `--slo-readyz`.
    pub fn any_fast_trip(&self, now_ms: u64) -> bool {
        self.status(now_ms).iter().any(|s| s.fast.tripped)
    }

    /// Publishes per-class burn-rate gauges (milli-units, since gauges
    /// are integers) to the global metrics registry.
    pub fn publish(&self, now_ms: u64) {
        for s in self.status(now_ms) {
            let labels = crate::metrics::render_labels(&[("class", &s.config.class)]);
            crate::metrics::labeled_gauge(
                "p3_slo_fast_burn_milli",
                "5-minute SLO burn rate x1000, per request class",
                &labels,
            )
            .set((s.fast.burn_rate * 1000.0) as i64);
            crate::metrics::labeled_gauge(
                "p3_slo_slow_burn_milli",
                "1-hour SLO burn rate x1000, per request class",
                &labels,
            )
            .set((s.slow.burn_rate * 1000.0) as i64);
        }
    }
}

fn window_burn(track: &ClassTrack, now_ms: u64, window_ms: u64, trip: f64) -> WindowBurn {
    let cutoff = now_ms.saturating_sub(window_ms);
    let mut events = 0u64;
    let mut bad = 0u64;
    // Newest events live at the back; stop at the first one past the cutoff.
    for e in track.events.iter().rev() {
        if e.ts_ms <= cutoff || e.ts_ms > now_ms {
            if e.ts_ms <= cutoff {
                break;
            }
            continue; // future-stamped event (clock skew): not in window
        }
        events += 1;
        if !e.good {
            bad += 1;
        }
    }
    let burn_rate = if events == 0 {
        0.0
    } else {
        let bad_fraction = bad as f64 / events as f64;
        bad_fraction / (1.0 - track.config.objective)
    };
    WindowBurn {
        events,
        bad,
        burn_rate,
        tripped: events >= MIN_EVENTS && burn_rate >= trip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(objective: f64, target_ms: u64) -> SloEngine {
        SloEngine::new(vec![SloConfig {
            class: "probability".into(),
            target_ms,
            objective,
        }])
    }

    #[test]
    fn spec_parsing() {
        let c = SloConfig::parse("probability:500:0.99").unwrap();
        assert_eq!(c.class, "probability");
        assert_eq!(c.target_ms, 500);
        assert!((c.objective - 0.99).abs() < 1e-12);
        for bad in [
            "",
            "probability",
            "probability:500",
            "p:0:0.99",
            "p:x:0.99",
            "p:500:1.0",
            "p:500:0",
            "p:500:nan",
            ":500:0.99",
            "p:500:0.99:extra",
        ] {
            assert!(SloConfig::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn empty_window_has_zero_burn_and_no_trip() {
        let e = engine(0.99, 500);
        let status = &e.status(1_000_000)[0];
        assert_eq!(status.fast.events, 0);
        assert_eq!(status.fast.burn_rate, 0.0);
        assert!(!status.fast.tripped);
        assert!(!status.slow.tripped);
        assert_eq!(status.budget_remaining, 1.0);
        assert!(!e.any_fast_trip(1_000_000));
    }

    #[test]
    fn single_bad_sample_never_trips() {
        let e = engine(0.99, 500);
        e.record("probability", 1_000, false, 10);
        let status = &e.status(1_000)[0];
        assert_eq!(status.fast.events, 1);
        assert_eq!(status.fast.bad, 1);
        // 100% bad over a 1% budget = burn 100, but one event is below
        // the MIN_EVENTS guard.
        assert!((status.fast.burn_rate - 100.0).abs() < 1e-9);
        assert!(!status.fast.tripped, "min-events guard must hold");
    }

    #[test]
    fn sustained_badness_trips_fast_window() {
        let e = engine(0.99, 500);
        for i in 0..20 {
            e.record("probability", 1_000 + i, false, 1_000);
        }
        let status = &e.status(2_000)[0];
        assert_eq!(status.fast.events, 20);
        assert!(status.fast.tripped);
        assert!(e.any_fast_trip(2_000));
        assert!(status.budget_remaining < 0.0, "budget overspent");
    }

    #[test]
    fn slow_latency_is_bad_even_when_ok() {
        let e = engine(0.5, 100);
        for i in 0..10 {
            e.record("probability", 1_000 + i, true, 500); // ok but over target
        }
        let status = &e.status(2_000)[0];
        assert_eq!(status.fast.bad, 10, "over-target latency counts as bad");
        // bad_fraction 1.0 over a 50% budget = burn 2.0, under both trips.
        assert!((status.fast.burn_rate - 2.0).abs() < 1e-9);
        assert!(!status.fast.tripped);
    }

    #[test]
    fn window_boundary_is_half_open() {
        let e = engine(0.99, 500);
        let now = 10_000_000;
        // Exactly FAST_WINDOW_MS old: just outside the fast window.
        e.record("probability", now - FAST_WINDOW_MS, false, 10);
        // One ms younger: inside.
        e.record("probability", now - FAST_WINDOW_MS + 1, false, 10);
        let status = &e.status(now)[0];
        assert_eq!(status.fast.events, 1, "boundary event must be excluded");
        assert_eq!(status.slow.events, 2, "both inside the slow window");
    }

    #[test]
    fn events_age_out_of_all_windows() {
        let e = engine(0.99, 500);
        for i in 0..50 {
            e.record("probability", 1_000 + i, false, 10);
        }
        // Far future: everything has aged out.
        let later = 1_000 + SLOW_WINDOW_MS + 10_000;
        let status = &e.status(later)[0];
        assert_eq!(status.fast.events, 0);
        assert_eq!(status.slow.events, 0);
        assert_eq!(status.slow.burn_rate, 0.0);
        assert!(!e.any_fast_trip(later));
        // And a new record at `later` prunes the stale queue.
        e.record("probability", later, true, 10);
        let status = &e.status(later)[0];
        assert_eq!(status.slow.events, 1);
    }

    #[test]
    fn good_traffic_dilutes_burn_below_trip() {
        let e = engine(0.9, 500);
        // 10% bad over a 10% budget: burn rate exactly 1.0 — healthy.
        for i in 0..90 {
            e.record("probability", 5_000 + i, true, 10);
        }
        for i in 0..10 {
            e.record("probability", 5_100 + i, false, 10);
        }
        let status = &e.status(6_000)[0];
        assert!((status.fast.burn_rate - 1.0).abs() < 1e-9);
        assert!(!status.fast.tripped);
        assert!((status.budget_remaining - 0.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_class_is_ignored() {
        let e = engine(0.99, 500);
        e.record("no-such-class", 1_000, false, 10);
        assert_eq!(e.status(1_000)[0].slow.events, 0);
    }

    #[test]
    fn duplicate_configs_last_wins() {
        let e = SloEngine::new(vec![
            SloConfig {
                class: "probability".into(),
                target_ms: 500,
                objective: 0.99,
            },
            SloConfig {
                class: "probability".into(),
                target_ms: 100,
                objective: 0.5,
            },
        ]);
        let configs = e.configs();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].target_ms, 100);
    }
}
