//! Leveled structured logging to stderr.
//!
//! The active level comes from the `P3_LOG` environment variable
//! (`error`, `warn`, `info`, `debug`; default `warn`), read once on
//! first use. Lines are `key=value` structured:
//!
//! ```text
//! ts=1754550000.123 level=info target=p3_service::server msg="worker pool ready" workers=8
//! ```
//!
//! Use the [`crate::error!`], [`crate::warn!`], [`crate::info!`] and
//! [`crate::debug!`] macros rather than calling [`emit`] directly: the
//! macros check [`enabled`] first, so a disabled level costs one relaxed
//! atomic load and no formatting.

use std::fmt::Display;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or operator-visible failures.
    Error = 0,
    /// Suspicious conditions (slow queries, fallbacks) — the default.
    Warn = 1,
    /// Lifecycle events: startup, shutdown, configuration.
    Info = 2,
    /// High-volume diagnostics for debugging sessions.
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Sentinel meaning "not initialised yet"; real values are `Level as usize`.
const UNSET: usize = usize::MAX;

static MAX_LEVEL: AtomicUsize = AtomicUsize::new(UNSET);

fn level_from_env() -> Level {
    match std::env::var("P3_LOG").ok().as_deref() {
        Some(s) => match s.trim().to_ascii_lowercase().as_str() {
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" | "trace" => Level::Debug,
            "" => Level::Warn,
            other => {
                // Can't use the logger to complain about the logger config;
                // one plain line, then fall back to the default.
                eprintln!("p3-obs: unknown P3_LOG value {other:?}, using \"warn\"");
                Level::Warn
            }
        },
        None => Level::Warn,
    }
}

/// The currently active maximum level.
pub fn max_level() -> Level {
    let raw = MAX_LEVEL.load(Ordering::Relaxed);
    if raw != UNSET {
        return match raw {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        };
    }
    let level = level_from_env();
    MAX_LEVEL.store(level as usize, Ordering::Relaxed);
    level
}

/// Overrides the level picked up from `P3_LOG` (used by tests and by
/// binaries with explicit verbosity flags).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as usize, Ordering::Relaxed);
}

/// Whether a record at `level` would be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

/// Quotes a value iff it contains whitespace, quotes or `=`, escaping as
/// needed, so lines stay machine-splittable on spaces.
fn push_value(out: &mut String, value: &str) {
    let needs_quotes = value.is_empty()
        || value
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '=' || c == '\\');
    if !needs_quotes {
        out.push_str(value);
        return;
    }
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats and writes one record. Prefer the macros, which gate on
/// [`enabled`] before any formatting happens.
pub fn emit(level: Level, target: &str, msg: &dyn Display, fields: &[(&str, &dyn Display)]) {
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    let mut line = format!(
        "ts={}.{:03} level={} target={} msg=",
        ts.as_secs(),
        ts.subsec_millis(),
        level.as_str(),
        target
    );
    push_value(&mut line, &msg.to_string());
    for (key, value) in fields {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        push_value(&mut line, &value.to_string());
    }
    line.push('\n');
    // Single write so concurrent threads don't interleave mid-line.
    let stderr = std::io::stderr();
    let _ = stderr.lock().write_all(line.as_bytes());
}

/// Logs at an explicit [`Level`]; the `error!`/`warn!`/`info!`/`debug!`
/// macros are the usual entry points.
#[macro_export]
macro_rules! log {
    ($lvl:expr, $msg:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::log::enabled($lvl) {
            $crate::log::emit(
                $lvl,
                module_path!(),
                &$msg,
                &[$((stringify!($key), &$val as &dyn ::std::fmt::Display)),*],
            );
        }
    };
}

/// Logs at [`Level::Error`]: `error!("msg", key = value, ...)`.
#[macro_export]
macro_rules! error {
    ($($t:tt)*) => { $crate::log!($crate::log::Level::Error, $($t)*) };
}

/// Logs at [`Level::Warn`]: `warn!("msg", key = value, ...)`.
#[macro_export]
macro_rules! warn {
    ($($t:tt)*) => { $crate::log!($crate::log::Level::Warn, $($t)*) };
}

/// Logs at [`Level::Info`]: `info!("msg", key = value, ...)`.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => { $crate::log!($crate::log::Level::Info, $($t)*) };
}

/// Logs at [`Level::Debug`]: `debug!("msg", key = value, ...)`.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => { $crate::log!($crate::log::Level::Debug, $($t)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_from_error_to_debug() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn set_max_level_controls_enabled() {
        set_max_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_max_level(Level::Error);
        assert!(!enabled(Level::Warn));
        set_max_level(Level::Warn);
    }

    #[test]
    fn values_with_spaces_are_quoted_and_escaped() {
        let mut out = String::new();
        push_value(&mut out, "plain");
        assert_eq!(out, "plain");
        out.clear();
        push_value(&mut out, "two words");
        assert_eq!(out, "\"two words\"");
        out.clear();
        push_value(&mut out, "say \"hi\"\n");
        assert_eq!(out, "\"say \\\"hi\\\"\\n\"");
        out.clear();
        push_value(&mut out, "");
        assert_eq!(out, "\"\"");
    }

    #[test]
    fn macros_accept_fields_and_trailing_comma() {
        set_max_level(Level::Error);
        // These must compile and be cheap no-ops at level error.
        crate::debug!("unreached", items = 3, label = "x",);
        crate::info!("unreached");
        set_max_level(Level::Warn);
    }
}
