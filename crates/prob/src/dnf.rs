//! Monotone Boolean DNF formulas — the algebraic provenance representation.
//!
//! A [`Dnf`] is a sum (`+`, alternative derivations) of [`Monomial`]s, each
//! a product (`·`, conjunctive use) of positive literals. Because PLP
//! provenance never negates, every formula here is monotone, which several
//! algorithms exploit (influence is non-negative, restriction never grows a
//! formula, Monte-Carlo needs no sign handling).

use crate::assignment::Assignment;
use crate::var::{VarId, VarTable};
use std::collections::HashSet;
use std::fmt;

/// A conjunction of positive literals, kept sorted and duplicate-free.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Monomial {
    lits: Vec<VarId>,
}

impl Monomial {
    /// Builds a monomial from literals (sorted and deduplicated here).
    pub fn new(mut lits: Vec<VarId>) -> Self {
        lits.sort_unstable();
        lits.dedup();
        Self { lits }
    }

    /// The empty monomial — the constant `true`.
    pub fn one() -> Self {
        Self { lits: Vec::new() }
    }

    /// The literals, sorted ascending.
    pub fn literals(&self) -> &[VarId] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether this is the constant `true`.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether `var` occurs in the monomial.
    pub fn contains(&self, var: VarId) -> bool {
        self.lits.binary_search(&var).is_ok()
    }

    /// Whether every literal of `self` also occurs in `other`
    /// (`self` *subsumes* `other`: `other ⇒ self`).
    pub fn subsumes(&self, other: &Monomial) -> bool {
        if self.lits.len() > other.lits.len() {
            return false;
        }
        // Merge walk over two sorted lists.
        let mut it = other.lits.iter();
        'outer: for lit in &self.lits {
            for o in it.by_ref() {
                match o.cmp(lit) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether `self` and `other` share no literal (are independent as
    /// events).
    pub fn disjoint(&self, other: &Monomial) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.lits.len() && j < other.lits.len() {
            match self.lits[i].cmp(&other.lits[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// The probability that all literals hold: the product of their
    /// probabilities (independence).
    pub fn probability(&self, vars: &VarTable) -> f64 {
        self.lits.iter().map(|&v| vars.prob(v)).product()
    }

    /// True under `assignment`?
    pub fn eval(&self, assignment: &Assignment) -> bool {
        self.lits.iter().all(|&v| assignment.get(v))
    }

    /// Removes `var` from the monomial (conditioning on `var = true`).
    fn without(&self, var: VarId) -> Monomial {
        Monomial {
            lits: self.lits.iter().copied().filter(|&v| v != var).collect(),
        }
    }
}

/// A monotone DNF formula: a set of monomials.
///
/// The representation maintains two cheap invariants: monomials are
/// deduplicated and none is strictly contained in another (absorption,
/// `a + a·b = a`). Absorption is what makes the paper's cycle-elimination
/// argument (Eq. 11) hold syntactically.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Dnf {
    monomials: Vec<Monomial>,
}

/// Shape counters of one DNF: how big the provenance polynomial is, the
/// number every probability backend's cost scales with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DnfShape {
    /// Monomials (derivations surviving absorption).
    pub monomials: usize,
    /// Literal occurrences across all monomials.
    pub literals: usize,
    /// Widest monomial (literals in the longest derivation).
    pub max_width: usize,
    /// Distinct variables mentioned.
    pub distinct_vars: usize,
}

impl Dnf {
    /// The constant `false` (no derivations).
    pub fn zero() -> Self {
        Self {
            monomials: Vec::new(),
        }
    }

    /// The constant `true` (an unconditional derivation).
    pub fn one() -> Self {
        Self {
            monomials: vec![Monomial::one()],
        }
    }

    /// Builds a formula from monomials, normalising (dedup + absorption).
    pub fn new(monomials: Vec<Monomial>) -> Self {
        let mut dnf = Self { monomials };
        dnf.normalize();
        dnf
    }

    /// A single-literal formula.
    pub fn literal(var: VarId) -> Self {
        Self {
            monomials: vec![Monomial::new(vec![var])],
        }
    }

    /// The monomials, each sorted; the list order is unspecified but
    /// deterministic.
    pub fn monomials(&self) -> &[Monomial] {
        &self.monomials
    }

    /// Number of monomials.
    pub fn len(&self) -> usize {
        self.monomials.len()
    }

    /// Whether this is the constant `false`.
    pub fn is_false(&self) -> bool {
        self.monomials.is_empty()
    }

    /// Whether this is the constant `true`.
    pub fn is_true(&self) -> bool {
        self.monomials.iter().any(Monomial::is_empty)
    }

    /// Whether the formula is empty (alias of [`Self::is_false`]).
    pub fn is_empty(&self) -> bool {
        self.is_false()
    }

    /// The distinct variables, sorted ascending.
    pub fn vars(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .monomials
            .iter()
            .flat_map(|m| m.literals().iter().copied())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Disjunction: `self + other`, normalised.
    pub fn or(&self, other: &Dnf) -> Dnf {
        let mut monomials = self.monomials.clone();
        monomials.extend(other.monomials.iter().cloned());
        Dnf::new(monomials)
    }

    /// Conjunction: distributes `self · other`, normalised.
    pub fn and(&self, other: &Dnf) -> Dnf {
        let mut monomials = Vec::with_capacity(self.monomials.len() * other.monomials.len());
        for a in &self.monomials {
            for b in &other.monomials {
                let mut lits = a.literals().to_vec();
                lits.extend_from_slice(b.literals());
                monomials.push(Monomial::new(lits));
            }
        }
        Dnf::new(monomials)
    }

    /// True under `assignment`?
    pub fn eval(&self, assignment: &Assignment) -> bool {
        self.monomials.iter().any(|m| m.eval(assignment))
    }

    /// The restriction `self | var = value`, normalised.
    ///
    /// For `value = true` the variable is erased from every monomial; for
    /// `value = false` every monomial containing it is dropped.
    pub fn restrict(&self, var: VarId, value: bool) -> Dnf {
        let monomials = self
            .monomials
            .iter()
            .filter_map(|m| {
                if m.contains(var) {
                    value.then(|| m.without(var))
                } else {
                    Some(m.clone())
                }
            })
            .collect();
        Dnf::new(monomials)
    }

    /// Keeps only the monomials at `indices` (used by sufficient-provenance
    /// search). Indices refer to the current [`Self::monomials`] order.
    pub fn select(&self, indices: &[usize]) -> Dnf {
        Dnf::new(indices.iter().map(|&i| self.monomials[i].clone()).collect())
    }

    /// Normalises in place: sorts monomials, removes duplicates and any
    /// monomial subsumed by a shorter one.
    fn normalize(&mut self) {
        // Sort by (length, lits) so potential subsumers precede subsumees.
        self.monomials
            .sort_unstable_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        self.monomials.dedup();
        // `true` absorbs everything.
        if self.monomials.first().is_some_and(Monomial::is_empty) {
            self.monomials.truncate(1);
            return;
        }
        let mut kept: Vec<Monomial> = Vec::with_capacity(self.monomials.len());
        'outer: for m in self.monomials.drain(..) {
            for k in &kept {
                if k.subsumes(&m) {
                    continue 'outer;
                }
            }
            kept.push(m);
        }
        self.monomials = kept;
    }

    /// Total number of literal occurrences (the paper's "k-literal" size).
    pub fn literal_occurrences(&self) -> usize {
        self.monomials.iter().map(Monomial::len).sum()
    }

    /// The formula's shape counters — the EXPLAIN plane's goal-level view
    /// of provenance size (exact probability is exponential in these).
    pub fn shape(&self) -> DnfShape {
        DnfShape {
            monomials: self.len(),
            literals: self.literal_occurrences(),
            max_width: self.monomials.iter().map(Monomial::len).max().unwrap_or(0),
            distinct_vars: self.vars().len(),
        }
    }

    /// Renders the formula as e.g. `x0·x2 + x1`.
    pub fn display<'a>(&'a self, vars: &'a VarTable) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Dnf, &'a VarTable);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.is_false() {
                    return write!(f, "0");
                }
                for (i, m) in self.0.monomials.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    if m.is_empty() {
                        write!(f, "1")?;
                    } else {
                        for (j, lit) in m.literals().iter().enumerate() {
                            if j > 0 {
                                write!(f, "·")?;
                            }
                            write!(f, "{}", self.1.name(*lit))?;
                        }
                    }
                }
                Ok(())
            }
        }
        D(self, vars)
    }

    /// Checks structural invariants; used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = HashSet::new();
        for m in &self.monomials {
            if !m.lits.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("monomial not strictly sorted: {:?}", m.lits));
            }
            if !seen.insert(m.clone()) {
                return Err(format!("duplicate monomial {:?}", m.lits));
            }
        }
        for (i, a) in self.monomials.iter().enumerate() {
            for (j, b) in self.monomials.iter().enumerate() {
                if i != j && a.subsumes(b) {
                    return Err(format!("monomial {:?} absorbs {:?}", a.lits, b.lits));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| v(i)).collect())
    }

    #[test]
    fn monomial_normalises_order_and_duplicates() {
        let a = m(&[3, 1, 2, 1]);
        assert_eq!(a.literals(), &[v(1), v(2), v(3)]);
    }

    #[test]
    fn subsumption() {
        assert!(m(&[1]).subsumes(&m(&[1, 2])));
        assert!(m(&[1, 2]).subsumes(&m(&[1, 2])));
        assert!(!m(&[1, 3]).subsumes(&m(&[1, 2])));
        assert!(!m(&[1, 2]).subsumes(&m(&[1])));
        assert!(m(&[]).subsumes(&m(&[5])));
    }

    #[test]
    fn disjointness() {
        assert!(m(&[1, 2]).disjoint(&m(&[3, 4])));
        assert!(!m(&[1, 2]).disjoint(&m(&[2, 3])));
        assert!(m(&[]).disjoint(&m(&[1])));
    }

    #[test]
    fn absorption_law() {
        // a + a·b = a  — the law behind cycle elimination (Eq. 11).
        let dnf = Dnf::new(vec![m(&[1]), m(&[1, 2])]);
        assert_eq!(dnf.monomials(), &[m(&[1])]);
    }

    #[test]
    fn dedup_on_construction() {
        let dnf = Dnf::new(vec![m(&[2, 1]), m(&[1, 2])]);
        assert_eq!(dnf.len(), 1);
    }

    #[test]
    fn true_absorbs_everything() {
        let dnf = Dnf::new(vec![m(&[1]), m(&[])]);
        assert!(dnf.is_true());
        assert_eq!(dnf.len(), 1);
    }

    #[test]
    fn or_and_distribute() {
        let a = Dnf::new(vec![m(&[1])]);
        let b = Dnf::new(vec![m(&[2]), m(&[3])]);
        let or = a.or(&b);
        assert_eq!(or.len(), 3);
        let and = a.and(&b);
        assert_eq!(and.monomials(), &[m(&[1, 2]), m(&[1, 3])]);
    }

    #[test]
    fn and_with_zero_and_one() {
        let a = Dnf::new(vec![m(&[1])]);
        assert!(a.and(&Dnf::zero()).is_false());
        assert_eq!(a.and(&Dnf::one()), a);
        assert_eq!(a.or(&Dnf::zero()), a);
        assert!(a.or(&Dnf::one()).is_true());
    }

    #[test]
    fn restriction() {
        // λ = x1·x2 + x3.
        let dnf = Dnf::new(vec![m(&[1, 2]), m(&[3])]);
        let t = dnf.restrict(v(1), true);
        assert_eq!(t.monomials(), &[m(&[2]), m(&[3])]);
        let f = dnf.restrict(v(1), false);
        assert_eq!(f.monomials(), &[m(&[3])]);
        // Restricting an absent variable is the identity.
        assert_eq!(dnf.restrict(v(9), true), dnf);
        assert_eq!(dnf.restrict(v(9), false), dnf);
    }

    #[test]
    fn restriction_triggers_absorption() {
        // λ = x1·x2 + x2·x3; conditioning x1=true gives x2 + x2·x3 = x2.
        let dnf = Dnf::new(vec![m(&[1, 2]), m(&[2, 3])]);
        let t = dnf.restrict(v(1), true);
        assert_eq!(t.monomials(), &[m(&[2])]);
    }

    #[test]
    fn eval_against_assignment() {
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[2])]);
        let mut a = Assignment::new(3);
        assert!(!dnf.eval(&a));
        a.set(v(2), true);
        assert!(dnf.eval(&a));
        a.set(v(2), false);
        a.set(v(0), true);
        a.set(v(1), true);
        assert!(dnf.eval(&a));
    }

    #[test]
    fn monomial_probability_is_a_product() {
        let mut vars = VarTable::new();
        let a = vars.add("a", 0.5);
        let b = vars.add("b", 0.4);
        let mono = Monomial::new(vec![a, b]);
        assert!((mono.probability(&vars) - 0.2).abs() < 1e-12);
        assert_eq!(Monomial::one().probability(&vars), 1.0);
    }

    #[test]
    fn vars_are_sorted_and_distinct() {
        let dnf = Dnf::new(vec![m(&[5, 1]), m(&[3, 1])]);
        assert_eq!(dnf.vars(), vec![v(1), v(3), v(5)]);
    }

    #[test]
    fn invariants_hold_after_operations() {
        let a = Dnf::new(vec![m(&[1, 2]), m(&[2]), m(&[3, 4]), m(&[1, 2, 3])]);
        a.check_invariants().unwrap();
        a.or(&Dnf::new(vec![m(&[2, 3])]))
            .check_invariants()
            .unwrap();
        a.and(&Dnf::new(vec![m(&[2]), m(&[9])]))
            .check_invariants()
            .unwrap();
        a.restrict(v(2), true).check_invariants().unwrap();
        a.restrict(v(2), false).check_invariants().unwrap();
    }

    #[test]
    fn display_renders_names() {
        let mut vars = VarTable::new();
        let r1 = vars.add("r1", 0.8);
        let t1 = vars.add("t1", 1.0);
        let dnf = Dnf::new(vec![Monomial::new(vec![r1, t1]), Monomial::new(vec![r1])]);
        // r1 absorbs r1·t1.
        assert_eq!(format!("{}", dnf.display(&vars)), "r1");
        let dnf2 = Dnf::new(vec![Monomial::new(vec![r1, t1])]);
        assert_eq!(format!("{}", dnf2.display(&vars)), "r1·t1");
        assert_eq!(format!("{}", Dnf::zero().display(&vars)), "0");
        assert_eq!(format!("{}", Dnf::one().display(&vars)), "1");
    }
}
