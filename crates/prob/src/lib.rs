//! # p3-prob
//!
//! Probability machinery for provenance polynomials.
//!
//! A provenance polynomial in P3 is a **monotone Boolean DNF formula** whose
//! literals are independent Boolean random variables — one per program
//! clause (base tuple or rule). This crate provides:
//!
//! * [`VarTable`] / [`VarId`] — the variable universe with probabilities;
//! * [`Dnf`] — the formula representation with the algebra the queries need
//!   (restriction, absorption, monomial arithmetic);
//! * [`exact`] — exact success probability by independence decomposition +
//!   Shannon expansion (the testing oracle and the small-formula fast path);
//! * [`bdd`] — a reduced ordered BDD package with weighted model counting,
//!   the classic ProbLog inference backend;
//! * [`mc`] — Monte-Carlo estimators: naive sampling, the Karp–Luby union
//!   estimator, and a paired (common-random-numbers) influence estimator;
//! * [`parallel`] — multi-threaded Monte-Carlo drivers (the paper's GPU
//!   parallelisation, reproduced with CPU threads);
//! * [`store`] — a hash-consed [`DnfStore`] interning formulas behind stable
//!   [`DnfId`]s, with memoized restriction/disjunction/conjunction; the
//!   foundation of `p3-core`'s shared query sessions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod assignment;
pub mod bdd;
pub mod dnf;
pub mod exact;
pub mod mc;
pub mod parallel;
pub mod store;
pub mod var;

pub use assignment::Assignment;
pub use dnf::{Dnf, DnfShape, Monomial};
pub use mc::McConfig;
pub use store::{DnfId, DnfStore, InternJournal, ShardStats, StoreStats};
pub use var::{VarId, VarTable};
