//! Multi-threaded Monte-Carlo drivers.
//!
//! The paper parallelises Monte-Carlo simulation on GPUs (§6.2, Table 8),
//! observing ~10× speedups because the workload is embarrassingly parallel.
//! This module reproduces the scheme with CPU threads via crossbeam's scoped
//! threads: samples are split across workers, each with an independently
//! seeded RNG stream, and counts are merged.
//!
//! Determinism: for a fixed `(cfg, threads)` pair results are reproducible;
//! changing the thread count changes the sample-stream split and therefore
//! the estimate (within Monte-Carlo error), exactly as on real parallel
//! hardware.

use crate::dnf::Dnf;
use crate::mc::{self, CompiledDnf, McConfig};
use crate::var::{VarId, VarTable};

/// Parses the `P3_THREADS` environment override.
///
/// Returns `Ok(None)` when the variable is unset, `Ok(Some(n))` for a
/// numeric value (where `n = 0` means "auto": use the hardware default),
/// and `Err` with a clear message for anything non-numeric — a typo'd
/// `P3_THREADS` must fail loudly, not silently fall back to the default.
pub fn threads_from_env() -> Result<Option<usize>, String> {
    match std::env::var("P3_THREADS") {
        Err(_) => Ok(None),
        Ok(raw) => raw.trim().parse::<usize>().map(Some).map_err(|_| {
            format!("P3_THREADS must be a non-negative integer (0 = auto), got '{raw}'")
        }),
    }
}

/// Number of worker threads to use by default.
///
/// Honours the `P3_THREADS` environment variable (`0` = auto); otherwise
/// uses the available parallelism, capped at 16 (beyond that, memory
/// bandwidth dominates for this workload). A thread count of `0` passed to
/// any driver in this module means "use this default", so callers can store
/// `0` in configs to defer the decision.
///
/// # Panics
/// If `P3_THREADS` is set to a non-numeric value; use
/// [`threads_from_env`] to handle that case gracefully.
pub fn default_threads() -> usize {
    match threads_from_env() {
        Ok(Some(n)) if n > 0 => n,
        Ok(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16),
        Err(msg) => panic!("{msg}"),
    }
}

/// Maps the `0 = use default` convention onto a concrete worker count.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

/// Splits `total` samples into `parts` near-equal chunks.
fn split(total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let base = total / parts;
    let extra = total % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// Parallel naive Monte-Carlo estimate of `P[λ]` using `threads` workers.
pub fn estimate(dnf: &Dnf, vars: &VarTable, cfg: McConfig, threads: usize) -> f64 {
    if dnf.is_false() {
        return 0.0;
    }
    if dnf.is_true() {
        return 1.0;
    }
    let compiled = CompiledDnf::compile(dnf, vars);
    let chunks = split(cfg.samples, resolve_threads(threads));
    let estimates: Vec<(usize, f64)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let compiled = &compiled;
                let worker_cfg = McConfig {
                    samples: n,
                    seed: worker_seed(cfg.seed, i),
                };
                scope.spawn(move |_| (n, mc::estimate_compiled(compiled, worker_cfg)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mc worker panicked"))
            .collect()
    })
    .expect("mc scope panicked");
    weighted_mean(&estimates)
}

/// Parallel paired influence estimate for a single variable.
pub fn influence(dnf: &Dnf, vars: &VarTable, x: VarId, cfg: McConfig, threads: usize) -> f64 {
    let compiled = CompiledDnf::compile(dnf, vars);
    let chunks = split(cfg.samples, resolve_threads(threads));
    let estimates: Vec<(usize, f64)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let compiled = &compiled;
                let worker_cfg = McConfig {
                    samples: n,
                    seed: worker_seed(cfg.seed, i),
                };
                scope.spawn(move |_| (n, mc::influence_compiled(compiled, x, worker_cfg)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mc worker panicked"))
            .collect()
    })
    .expect("mc scope panicked");
    weighted_mean(&estimates)
}

/// Influence of every variable in `dnf`, parallelised **across variables**:
/// each worker takes a stripe of literals and runs the full paired estimator
/// for each. This matches the paper's "compute the influence of all
/// literals" workload (Table 8).
pub fn influence_all(
    dnf: &Dnf,
    vars: &VarTable,
    cfg: McConfig,
    threads: usize,
) -> Vec<(VarId, f64)> {
    let compiled = CompiledDnf::compile(dnf, vars);
    let all_vars = dnf.vars();
    let threads = resolve_threads(threads).min(all_vars.len().max(1));
    let mut out: Vec<(VarId, f64)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let compiled = &compiled;
                let all_vars = &all_vars;
                scope.spawn(move |_| {
                    all_vars
                        .iter()
                        .skip(t)
                        .step_by(threads)
                        .map(|&v| (v, mc::influence_compiled(compiled, v, cfg)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("influence worker panicked"))
            .collect()
    })
    .expect("influence scope panicked");
    mc::sort_by_influence(&mut out);
    out
}

/// Derives a distinct, stable seed for worker `i`.
fn worker_seed(base: u64, i: usize) -> u64 {
    // SplitMix64 step keeps streams decorrelated even for adjacent indices.
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn weighted_mean(parts: &[(usize, f64)]) -> f64 {
    let total: usize = parts.iter().map(|&(n, _)| n).sum();
    if total == 0 {
        return 0.0;
    }
    parts.iter().map(|&(n, est)| est * n as f64).sum::<f64>() / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Monomial;
    use crate::exact;

    fn table(probs: &[f64]) -> VarTable {
        let mut t = VarTable::new();
        for (i, &p) in probs.iter().enumerate() {
            t.add(format!("x{i}"), p);
        }
        t
    }

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| VarId(i)).collect())
    }

    #[test]
    fn split_distributes_remainders() {
        assert_eq!(split(10, 3), vec![4, 3, 3]);
        assert_eq!(split(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(split(0, 3), vec![0, 0, 0]);
        assert_eq!(split(5, 1), vec![5]);
    }

    #[test]
    fn parallel_estimate_converges() {
        let vars = table(&[0.5, 0.4, 0.2]);
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[0, 2])]);
        let expected = exact::probability(&dnf, &vars);
        let est = estimate(
            &dnf,
            &vars,
            McConfig {
                samples: 200_000,
                seed: 11,
            },
            4,
        );
        assert!(
            (est - expected).abs() < 0.01,
            "est={est} expected={expected}"
        );
    }

    #[test]
    fn parallel_influence_all_matches_sequential_ranking() {
        let vars = table(&[0.8, 0.4, 0.2, 1.0, 1.0, 0.4, 0.6, 1.0]);
        let dnf = Dnf::new(vec![m(&[2, 7, 0, 3, 4]), m(&[2, 7, 1, 5, 6])]);
        let cfg = McConfig {
            samples: 100_000,
            seed: 5,
        };
        let seq = mc::influence_all(&dnf, &vars, cfg);
        let par = influence_all(&dnf, &vars, cfg, 4);
        // Stripe-parallel influence uses the same per-variable estimator and
        // seed, so values agree exactly.
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_results_are_reproducible() {
        let vars = table(&[0.5, 0.4]);
        let dnf = Dnf::new(vec![m(&[0]), m(&[1])]);
        let cfg = McConfig {
            samples: 50_000,
            seed: 9,
        };
        assert_eq!(estimate(&dnf, &vars, cfg, 3), estimate(&dnf, &vars, cfg, 3));
    }

    #[test]
    fn worker_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..64).map(|i| worker_seed(42, i)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn zero_threads_means_default() {
        let vars = table(&[0.5, 0.4]);
        let dnf = Dnf::new(vec![m(&[0]), m(&[1])]);
        let cfg = McConfig {
            samples: 10_000,
            seed: 2,
        };
        // `0` resolves to default_threads(); the estimate must match an
        // explicit call with that count (same seed split).
        let dflt = default_threads();
        assert_eq!(
            estimate(&dnf, &vars, cfg, 0),
            estimate(&dnf, &vars, cfg, dflt)
        );
        assert_eq!(
            influence_all(&dnf, &vars, cfg, 0),
            influence_all(&dnf, &vars, cfg, dflt)
        );
        assert_eq!(resolve_threads(0), dflt);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn p3_threads_env_overrides_default() {
        // Serialised with nothing: other tests pass explicit counts, so the
        // env var cannot leak into them.
        std::env::set_var("P3_THREADS", "2");
        assert_eq!(threads_from_env(), Ok(Some(2)));
        assert_eq!(default_threads(), 2);
        // Non-numeric values are rejected with a clear error, not silently
        // replaced by the hardware default.
        std::env::set_var("P3_THREADS", "not a number");
        let err = threads_from_env().unwrap_err();
        assert!(err.contains("P3_THREADS"), "{err}");
        assert!(err.contains("not a number"), "{err}");
        let panic = std::panic::catch_unwind(default_threads).unwrap_err();
        let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("P3_THREADS"), "{msg}");
        // 0 = auto: same as the variable being unset.
        std::env::remove_var("P3_THREADS");
        let auto = default_threads();
        assert!((1..=16).contains(&auto));
        std::env::set_var("P3_THREADS", "0");
        assert_eq!(threads_from_env(), Ok(Some(0)));
        assert_eq!(default_threads(), auto, "0 means auto");
        std::env::remove_var("P3_THREADS");
    }

    #[test]
    fn more_threads_than_samples_is_fine() {
        let vars = table(&[0.5]);
        let dnf = Dnf::new(vec![m(&[0])]);
        let est = estimate(
            &dnf,
            &vars,
            McConfig {
                samples: 3,
                seed: 1,
            },
            8,
        );
        assert!((0.0..=1.0).contains(&est));
    }
}
