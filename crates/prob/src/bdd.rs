//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! ProbLog's classic inference pipeline compiles the query's DNF into a BDD
//! and computes the success probability by weighted model counting over it
//! (De Raedt et al., IJCAI'07; Bryant 1986). This module provides that
//! backend: hash-consed nodes, memoized `apply`, DNF compilation, and WMC.
//!
//! Variable order is [`VarId`] order. The terminals are node ids 0 (false)
//! and 1 (true).

use crate::dnf::Dnf;
use crate::var::{VarId, VarTable};
use std::collections::HashMap;

/// A BDD node reference.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct NodeId(u32);

/// The `false` terminal.
pub const FALSE: NodeId = NodeId(0);
/// The `true` terminal.
pub const TRUE: NodeId = NodeId(1);

impl NodeId {
    /// Whether this is a terminal node.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    var: u32,
    lo: NodeId,
    hi: NodeId,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
}

/// A BDD manager: owns the node store and caches.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    apply_cache: HashMap<(Op, NodeId, NodeId), NodeId>,
}

impl Default for Bdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Bdd {
    /// Creates an empty manager (terminals only).
    pub fn new() -> Self {
        // Slots 0 and 1 are reserved for the terminals; the sentinel nodes
        // stored there are never dereferenced.
        let sentinel = Node {
            var: u32::MAX,
            lo: FALSE,
            hi: FALSE,
        };
        Self {
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
        }
    }

    /// Number of live nodes, including the two terminals.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The hash-consed node `(var ? hi : lo)`, applying the reduction rule.
    fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("bdd node overflow"));
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// The single-variable BDD for `var`.
    pub fn var(&mut self, var: VarId) -> NodeId {
        self.mk(var.0, FALSE, TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::And, a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.apply(Op::Or, a, b)
    }

    fn apply(&mut self, op: Op, a: NodeId, b: NodeId) -> NodeId {
        // Terminal cases.
        match op {
            Op::And => {
                if a == FALSE || b == FALSE {
                    return FALSE;
                }
                if a == TRUE {
                    return b;
                }
                if b == TRUE {
                    return a;
                }
            }
            Op::Or => {
                if a == TRUE || b == TRUE {
                    return TRUE;
                }
                if a == FALSE {
                    return b;
                }
                if b == FALSE {
                    return a;
                }
            }
        }
        if a == b {
            return a;
        }
        // Commutative: canonicalise the cache key.
        let key = if a.0 <= b.0 { (op, a, b) } else { (op, b, a) };
        if let Some(&hit) = self.apply_cache.get(&key) {
            return hit;
        }

        let na = self.nodes[a.0 as usize];
        let nb = self.nodes[b.0 as usize];
        let result = if na.var == nb.var {
            let lo = self.apply(op, na.lo, nb.lo);
            let hi = self.apply(op, na.hi, nb.hi);
            self.mk(na.var, lo, hi)
        } else if na.var < nb.var {
            let lo = self.apply(op, na.lo, b);
            let hi = self.apply(op, na.hi, b);
            self.mk(na.var, lo, hi)
        } else {
            let lo = self.apply(op, a, nb.lo);
            let hi = self.apply(op, a, nb.hi);
            self.mk(nb.var, lo, hi)
        };
        self.apply_cache.insert(key, result);
        result
    }

    /// Compiles a DNF into this manager.
    pub fn from_dnf(&mut self, dnf: &Dnf) -> NodeId {
        let mut acc = FALSE;
        for m in dnf.monomials() {
            // Build the monomial bottom-up over descending variable order so
            // every `mk` call respects the global order.
            let mut cube = TRUE;
            for &lit in m.literals().iter().rev() {
                cube = self.mk(lit.0, FALSE, cube);
            }
            acc = self.or(acc, cube);
        }
        p3_obs::histogram!(
            "p3_prob_bdd_nodes",
            "ROBDD node count after compiling a DNF formula"
        )
        .observe(self.node_count() as u64);
        acc
    }

    /// Weighted model counting: `P[f]` under independent variables.
    pub fn wmc(&self, node: NodeId, vars: &VarTable) -> f64 {
        let mut memo: HashMap<NodeId, f64> = HashMap::new();
        self.wmc_rec(node, vars, &mut memo)
    }

    fn wmc_rec(&self, node: NodeId, vars: &VarTable, memo: &mut HashMap<NodeId, f64>) -> f64 {
        if node == FALSE {
            return 0.0;
        }
        if node == TRUE {
            return 1.0;
        }
        if let Some(&p) = memo.get(&node) {
            return p;
        }
        let n = self.nodes[node.0 as usize];
        let p_var = vars.prob(VarId(n.var));
        let p =
            (1.0 - p_var) * self.wmc_rec(n.lo, vars, memo) + p_var * self.wmc_rec(n.hi, vars, memo);
        memo.insert(node, p);
        p
    }

    /// Evaluates the function under a complete truth assignment.
    pub fn eval(&self, node: NodeId, assignment: &crate::assignment::Assignment) -> bool {
        let mut cur = node;
        while !cur.is_terminal() {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment.get(VarId(n.var)) {
                n.hi
            } else {
                n.lo
            };
        }
        cur == TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Monomial;

    fn table(probs: &[f64]) -> VarTable {
        let mut t = VarTable::new();
        for (i, &p) in probs.iter().enumerate() {
            t.add(format!("x{i}"), p);
        }
        t
    }

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| VarId(i)).collect())
    }

    #[test]
    fn terminals_behave() {
        let mut bdd = Bdd::new();
        let x = bdd.var(VarId(0));
        assert_eq!(bdd.and(x, FALSE), FALSE);
        assert_eq!(bdd.and(x, TRUE), x);
        assert_eq!(bdd.or(x, TRUE), TRUE);
        assert_eq!(bdd.or(x, FALSE), x);
        assert_eq!(bdd.and(x, x), x);
        assert_eq!(bdd.or(x, x), x);
    }

    #[test]
    fn hash_consing_shares_structure() {
        let mut bdd = Bdd::new();
        let a = bdd.var(VarId(0));
        let b = bdd.var(VarId(1));
        let ab1 = bdd.and(a, b);
        let ab2 = bdd.and(b, a);
        assert_eq!(ab1, ab2);
    }

    #[test]
    fn wmc_matches_exact_on_random_dnfs() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let nvars = rng.random_range(2..7usize);
            let probs: Vec<f64> = (0..nvars).map(|_| rng.random::<f64>()).collect();
            let vars = table(&probs);
            let nmono = rng.random_range(1..6usize);
            let monomials: Vec<Monomial> = (0..nmono)
                .map(|_| {
                    let len = rng.random_range(1..=nvars);
                    let lits: Vec<VarId> = (0..len)
                        .map(|_| VarId(rng.random_range(0..nvars) as u32))
                        .collect();
                    Monomial::new(lits)
                })
                .collect();
            let dnf = Dnf::new(monomials);
            let mut bdd = Bdd::new();
            let node = bdd.from_dnf(&dnf);
            let wmc = bdd.wmc(node, &vars);
            let exact = crate::exact::probability(&dnf, &vars);
            assert!(
                (wmc - exact).abs() < 1e-10,
                "wmc={wmc} exact={exact} dnf={dnf:?}"
            );
        }
    }

    #[test]
    fn eval_agrees_with_dnf_eval() {
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[2])]);
        let mut bdd = Bdd::new();
        let node = bdd.from_dnf(&dnf);
        for world in 0u32..8 {
            let mut a = crate::assignment::Assignment::new(3);
            for i in 0..3 {
                a.set(VarId(i), world & (1 << i) != 0);
            }
            assert_eq!(bdd.eval(node, &a), dnf.eval(&a), "world {world:03b}");
        }
    }

    #[test]
    fn from_dnf_constants() {
        let mut bdd = Bdd::new();
        assert_eq!(bdd.from_dnf(&Dnf::zero()), FALSE);
        assert_eq!(bdd.from_dnf(&Dnf::one()), TRUE);
    }

    #[test]
    fn acquaintance_wmc() {
        let vars = table(&[0.8, 0.4, 0.2, 1.0, 1.0, 0.4, 0.6, 1.0]);
        let dnf = Dnf::new(vec![m(&[2, 7, 0, 3, 4]), m(&[2, 7, 1, 5, 6])]);
        let mut bdd = Bdd::new();
        let node = bdd.from_dnf(&dnf);
        assert!((bdd.wmc(node, &vars) - 0.16384).abs() < 1e-12);
    }
}
