//! A hash-consed store of DNF formulas.
//!
//! [`DnfStore`] interns every distinct [`Dnf`] once and hands out stable
//! [`DnfId`]s. Structurally equal formulas — however they were built — map
//! to the same id and the same `Arc<Dnf>` allocation, so:
//!
//! * equality between stored formulas is an integer compare;
//! * downstream caches (probability memo tables, extraction results) can key
//!   on `DnfId` instead of hashing whole formulas;
//! * the algebraic operations ([`DnfStore::or`], [`DnfStore::and`],
//!   [`DnfStore::restrict`]) are memoized per *id*, so e.g. an influence
//!   query restricting the same base formula on fifty candidate literals
//!   normalises each restriction only once per process lifetime.
//!
//! The store is append-only: interning never invalidates an id, which is
//! what makes it safe to share one store across concurrent query sessions
//! (see `p3-core`'s `QuerySession`). To keep concurrent workers from
//! serialising on one big lock, the intern index and the op caches are
//! split into [`SHARDS`] hash-keyed shards, each behind its own `RwLock`;
//! only the id → formula table (`formulas`) is global, because ids must be
//! allocated from a single sequence. Lock order is always
//! shard-then-formulas, and no two shard locks are ever held together, so
//! the scheme is deadlock-free.

use crate::dnf::Dnf;
use crate::var::VarId;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of lock shards for the intern index and the op caches. A power of
/// two so the hash → shard map is a mask.
pub const SHARDS: usize = 16;

/// A stable handle to an interned formula. Ids are only meaningful for the
/// store that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DnfId(u32);

impl DnfId {
    /// The constant `false` formula — always id 0 in every store.
    pub const FALSE: DnfId = DnfId(0);
    /// The constant `true` formula — always id 1 in every store.
    pub const TRUE: DnfId = DnfId(1);

    /// The raw index (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a raw index. The caller must guarantee the
    /// index identifies a formula in the store the id will be used with —
    /// this exists for replaying persisted ids (`p3-store`), where that
    /// guarantee comes from replaying the intern log in allocation order.
    pub fn from_index(index: usize) -> DnfId {
        DnfId(u32::try_from(index).expect("DnfId overflow"))
    }
}

/// A sink observing every *new* formula interned into a [`DnfStore`], in
/// `DnfId` allocation order (the call happens while the id sequence lock
/// is held, so observed order == id order — the property a durable log
/// needs to replay ids faithfully). Implementations must be cheap and
/// must never call back into the store.
pub trait InternJournal: Send + Sync {
    /// Called once per newly allocated id, never for intern cache hits.
    fn on_intern(&self, id: DnfId, dnf: &Dnf);
}

/// Counters describing store effectiveness; all monotonically increasing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct formulas interned.
    pub formulas: usize,
    /// `intern` calls that found an existing formula.
    pub intern_hits: u64,
    /// `intern` calls that added a new formula.
    pub intern_misses: u64,
    /// Memoized op lookups (`or`/`and`/`restrict`) answered from cache.
    pub op_hits: u64,
    /// Memoized op lookups that had to compute.
    pub op_misses: u64,
}

/// A snapshot of one shard's counters and occupancy, for per-shard
/// gauges (balance across shards is what these exist to reveal).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Formulas interned via this shard's index.
    pub entries: usize,
    /// Intern lookups answered by this shard's index.
    pub intern_hits: u64,
    /// Intern lookups that inserted into this shard's index.
    pub intern_misses: u64,
    /// Op-cache lookups answered by this shard.
    pub op_hits: u64,
    /// Op-cache lookups that had to compute.
    pub op_misses: u64,
}

/// Per-shard memo tables for the algebraic operations.
#[derive(Default)]
struct OpCaches {
    restrict: HashMap<(DnfId, VarId, bool), DnfId>,
    or: HashMap<(DnfId, DnfId), DnfId>,
    and: HashMap<(DnfId, DnfId), DnfId>,
}

/// Per-shard hit/miss counters (atomics so hit paths stay read-locked).
#[derive(Default)]
struct ShardCounters {
    intern_hits: AtomicU64,
    intern_misses: AtomicU64,
    op_hits: AtomicU64,
    op_misses: AtomicU64,
}

fn shard_of<T: Hash>(key: &T) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

// Cached process-wide metric handles for the hot paths (the per-shard
// atomics above are store-local; these aggregate across stores).
fn intern_hits_metric() -> &'static p3_obs::metrics::Counter {
    p3_obs::counter!(
        "p3_prob_store_intern_hits_total",
        "DnfStore intern calls answered by the hash-cons index"
    )
}

fn op_hits_metric() -> &'static p3_obs::metrics::Counter {
    p3_obs::counter!(
        "p3_prob_store_op_hits_total",
        "Memoized DNF or/and/restrict lookups answered from cache"
    )
}

fn op_misses_metric() -> &'static p3_obs::metrics::Counter {
    p3_obs::counter!(
        "p3_prob_store_op_misses_total",
        "Memoized DNF or/and/restrict lookups that had to compute"
    )
}

/// A thread-safe, append-only interner of [`Dnf`] formulas with memoized
/// algebraic operations. See the module docs for the design rationale.
///
/// Counters are atomics so cache-hit paths never touch a write lock, and
/// all maps are hash-sharded so concurrent workers interning unrelated
/// formulas proceed without contention.
pub struct DnfStore {
    /// Global id → formula table; the only store-wide lock.
    formulas: RwLock<Vec<Arc<Dnf>>>,
    /// Hash-sharded formula → id index.
    index: [RwLock<HashMap<Arc<Dnf>, u32>>; SHARDS],
    /// Hash-sharded op memo tables (keyed by the op's argument tuple).
    ops: [RwLock<OpCaches>; SHARDS],
    /// Hit/miss counters, sharded like the maps they describe.
    counters: [ShardCounters; SHARDS],
    /// Optional observer of new interns (the persistence journal). Lock
    /// order: formulas, then journal; set/clear take only the journal lock.
    journal: RwLock<Option<Arc<dyn InternJournal>>>,
}

impl Default for DnfStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DnfStore {
    /// An empty store with the constants pre-interned at [`DnfId::FALSE`]
    /// and [`DnfId::TRUE`].
    pub fn new() -> Self {
        let store = Self {
            formulas: RwLock::new(Vec::new()),
            index: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            ops: std::array::from_fn(|_| RwLock::new(OpCaches::default())),
            counters: std::array::from_fn(|_| ShardCounters::default()),
            journal: RwLock::new(None),
        };
        let zero = store.intern(Dnf::zero());
        let one = store.intern(Dnf::one());
        debug_assert_eq!(zero, DnfId::FALSE);
        debug_assert_eq!(one, DnfId::TRUE);
        // The two constants are structural, not client traffic.
        for shard in &store.counters {
            shard.intern_misses.store(0, Ordering::Relaxed);
        }
        // Register the hit-side families up front so a scrape lists them
        // even before any workload produces a cache hit.
        intern_hits_metric();
        op_hits_metric();
        op_misses_metric();
        store
    }

    /// Interns `dnf`, returning its stable id. Structurally equal formulas
    /// always receive the same id (and share one allocation).
    pub fn intern(&self, dnf: Dnf) -> DnfId {
        let shard_idx = shard_of(&dnf);
        let shard = &self.index[shard_idx];
        let counters = &self.counters[shard_idx];
        // Fast path: a read lock on one shard suffices for known formulas.
        {
            let index = shard.read().unwrap();
            if let Some(&id) = index.get(&dnf) {
                counters.intern_hits.fetch_add(1, Ordering::Relaxed);
                intern_hits_metric().inc();
                return DnfId(id);
            }
        }
        let mut index = shard.write().unwrap();
        if let Some(&id) = index.get(&dnf) {
            // Lost a race: someone interned it between the two locks.
            counters.intern_hits.fetch_add(1, Ordering::Relaxed);
            intern_hits_metric().inc();
            return DnfId(id);
        }
        let arc = Arc::new(dnf);
        // Id allocation is the only cross-shard step; the formulas lock is
        // taken strictly after the shard lock, never the other way round.
        let id = {
            let mut formulas = self.formulas.write().unwrap();
            let id = u32::try_from(formulas.len()).expect("DnfStore overflow");
            formulas.push(Arc::clone(&arc));
            // Journal inside the id-sequence lock: the log then receives
            // interns in exactly allocation order, which is what lets a
            // replay reproduce identical ids.
            if let Some(journal) = self.journal.read().unwrap().as_ref() {
                journal.on_intern(DnfId(id), &arc);
            }
            id
        };
        index.insert(arc, id);
        counters.intern_misses.fetch_add(1, Ordering::Relaxed);
        p3_obs::counter!(
            "p3_prob_store_intern_misses_total",
            "DnfStore intern calls that added a new formula"
        )
        .inc();
        DnfId(id)
    }

    /// The formula behind `id`. The `Arc` is shared with the store, so two
    /// equal formulas are pointer-equal: `Arc::ptr_eq(&s.get(a), &s.get(a))`.
    ///
    /// # Panics
    /// If `id` did not come from this store.
    pub fn get(&self, id: DnfId) -> Arc<Dnf> {
        Arc::clone(&self.formulas.read().unwrap()[id.index()])
    }

    /// Shorthand for interning a single-literal formula.
    pub fn literal(&self, var: VarId) -> DnfId {
        self.intern(Dnf::literal(var))
    }

    /// Memoized disjunction `a + b`.
    pub fn or(&self, a: DnfId, b: DnfId) -> DnfId {
        // Identities dodge both the cache and the normalisation.
        if a == DnfId::FALSE || a == b {
            return b;
        }
        if b == DnfId::FALSE {
            return a;
        }
        if a == DnfId::TRUE || b == DnfId::TRUE {
            return DnfId::TRUE;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard_idx = shard_of(&("or", key));
        let shard = &self.ops[shard_idx];
        if let Some(&id) = shard.read().unwrap().or.get(&key) {
            self.counters[shard_idx]
                .op_hits
                .fetch_add(1, Ordering::Relaxed);
            op_hits_metric().inc();
            return id;
        }
        let (fa, fb) = (self.get(a), self.get(b));
        let id = self.intern(fa.or(&fb));
        shard.write().unwrap().or.insert(key, id);
        self.counters[shard_idx]
            .op_misses
            .fetch_add(1, Ordering::Relaxed);
        op_misses_metric().inc();
        id
    }

    /// Memoized conjunction `a · b`.
    pub fn and(&self, a: DnfId, b: DnfId) -> DnfId {
        if a == DnfId::FALSE || b == DnfId::FALSE {
            return DnfId::FALSE;
        }
        if a == DnfId::TRUE || a == b {
            return b;
        }
        if b == DnfId::TRUE {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard_idx = shard_of(&("and", key));
        let shard = &self.ops[shard_idx];
        if let Some(&id) = shard.read().unwrap().and.get(&key) {
            self.counters[shard_idx]
                .op_hits
                .fetch_add(1, Ordering::Relaxed);
            op_hits_metric().inc();
            return id;
        }
        let (fa, fb) = (self.get(a), self.get(b));
        let id = self.intern(fa.and(&fb));
        shard.write().unwrap().and.insert(key, id);
        self.counters[shard_idx]
            .op_misses
            .fetch_add(1, Ordering::Relaxed);
        op_misses_metric().inc();
        id
    }

    /// Memoized restriction `formula | var = value`.
    pub fn restrict(&self, id: DnfId, var: VarId, value: bool) -> DnfId {
        if id == DnfId::FALSE || id == DnfId::TRUE {
            return id;
        }
        let key = (id, var, value);
        let shard_idx = shard_of(&("restrict", key));
        let shard = &self.ops[shard_idx];
        if let Some(&cached) = shard.read().unwrap().restrict.get(&key) {
            self.counters[shard_idx]
                .op_hits
                .fetch_add(1, Ordering::Relaxed);
            op_hits_metric().inc();
            return cached;
        }
        let result = self.get(id).restrict(var, value);
        let out = self.intern(result);
        shard.write().unwrap().restrict.insert(key, out);
        self.counters[shard_idx]
            .op_misses
            .fetch_add(1, Ordering::Relaxed);
        op_misses_metric().inc();
        out
    }

    /// Installs `journal` as the intern observer. Formulas already present
    /// are NOT replayed to it — persistence restores state *before*
    /// installing the journal, so nothing is double-logged.
    pub fn set_journal(&self, journal: Arc<dyn InternJournal>) {
        *self.journal.write().unwrap() = Some(journal);
    }

    /// Removes the intern observer, if any.
    pub fn clear_journal(&self) {
        *self.journal.write().unwrap() = None;
    }

    /// A point-in-time copy of every interned formula, in id order
    /// (`result[i]` is the formula behind `DnfId` `i`). Compaction walks
    /// this to rebuild a snapshot.
    pub fn export_formulas(&self) -> Vec<Arc<Dnf>> {
        self.formulas.read().unwrap().clone()
    }

    /// Number of distinct formulas interned (including the two constants).
    pub fn len(&self) -> usize {
        self.formulas.read().unwrap().len()
    }

    /// Whether only the constants are present.
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }

    /// A snapshot of the effectiveness counters (summed across shards).
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            formulas: self.len(),
            ..StoreStats::default()
        };
        for shard in &self.counters {
            stats.intern_hits += shard.intern_hits.load(Ordering::Relaxed);
            stats.intern_misses += shard.intern_misses.load(Ordering::Relaxed);
            stats.op_hits += shard.op_hits.load(Ordering::Relaxed);
            stats.op_misses += shard.op_misses.load(Ordering::Relaxed);
        }
        stats
    }

    /// Per-shard counters and index occupancy, in shard order. Feeds the
    /// service's per-shard gauges; a skewed `entries` distribution means
    /// the shard hash is funnelling contention onto a few locks.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..SHARDS)
            .map(|i| ShardStats {
                entries: self.index[i].read().unwrap().len(),
                intern_hits: self.counters[i].intern_hits.load(Ordering::Relaxed),
                intern_misses: self.counters[i].intern_misses.load(Ordering::Relaxed),
                op_hits: self.counters[i].op_hits.load(Ordering::Relaxed),
                op_misses: self.counters[i].op_misses.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Monomial;

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| VarId(i)).collect())
    }

    #[test]
    fn constants_have_fixed_ids() {
        let store = DnfStore::new();
        assert_eq!(store.intern(Dnf::zero()), DnfId::FALSE);
        assert_eq!(store.intern(Dnf::one()), DnfId::TRUE);
        assert!(store.get(DnfId::FALSE).is_false());
        assert!(store.get(DnfId::TRUE).is_true());
    }

    #[test]
    fn structurally_equal_formulas_share_an_id_and_allocation() {
        let store = DnfStore::new();
        let a = store.intern(Dnf::new(vec![m(&[1, 2]), m(&[3])]));
        // Built differently (different monomial order, pre-normal input).
        let b = store.intern(Dnf::new(vec![m(&[3]), m(&[2, 1]), m(&[1, 2, 3])]));
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&store.get(a), &store.get(b)));
        let stats = store.stats();
        assert_eq!(stats.intern_hits, 1);
    }

    #[test]
    fn or_and_restrict_match_direct_operations() {
        let store = DnfStore::new();
        let fa = Dnf::new(vec![m(&[1, 2])]);
        let fb = Dnf::new(vec![m(&[2, 3]), m(&[4])]);
        let a = store.intern(fa.clone());
        let b = store.intern(fb.clone());
        assert_eq!(*store.get(store.or(a, b)), fa.or(&fb));
        assert_eq!(*store.get(store.and(a, b)), fa.and(&fb));
        assert_eq!(
            *store.get(store.restrict(a, VarId(1), true)),
            fa.restrict(VarId(1), true)
        );
        assert_eq!(
            *store.get(store.restrict(a, VarId(1), false)),
            fa.restrict(VarId(1), false)
        );
    }

    #[test]
    fn identities_short_circuit() {
        let store = DnfStore::new();
        let a = store.intern(Dnf::new(vec![m(&[1])]));
        assert_eq!(store.or(a, DnfId::FALSE), a);
        assert_eq!(store.or(DnfId::FALSE, a), a);
        assert_eq!(store.or(a, DnfId::TRUE), DnfId::TRUE);
        assert_eq!(store.or(a, a), a);
        assert_eq!(store.and(a, DnfId::TRUE), a);
        assert_eq!(store.and(DnfId::TRUE, a), a);
        assert_eq!(store.and(a, DnfId::FALSE), DnfId::FALSE);
        assert_eq!(store.and(a, a), a);
        assert_eq!(store.restrict(DnfId::TRUE, VarId(0), false), DnfId::TRUE);
        // None of the above should have populated an op cache.
        assert_eq!(store.stats().op_misses, 0);
    }

    #[test]
    fn ops_are_memoized() {
        let store = DnfStore::new();
        let a = store.intern(Dnf::new(vec![m(&[1, 2]), m(&[3])]));
        let first = store.restrict(a, VarId(1), true);
        let misses_after_first = store.stats().op_misses;
        let second = store.restrict(a, VarId(1), true);
        assert_eq!(first, second);
        assert_eq!(store.stats().op_misses, misses_after_first);
        assert!(store.stats().op_hits >= 1);
        // Commutative key: or(a, b) and or(b, a) share a cache entry.
        let b = store.intern(Dnf::new(vec![m(&[4])]));
        let ab = store.or(a, b);
        let hits = store.stats().op_hits;
        assert_eq!(store.or(b, a), ab);
        assert_eq!(store.stats().op_hits, hits + 1);
    }

    #[test]
    fn shard_stats_sum_to_store_stats() {
        let store = DnfStore::new();
        for i in 0..40u32 {
            let id = store.intern(Dnf::new(vec![m(&[i, i + 1])]));
            let _ = store.restrict(id, VarId(i), true);
            store.intern(Dnf::new(vec![m(&[i, i + 1])])); // guaranteed hit
        }
        let total = store.stats();
        let shards = store.shard_stats();
        assert_eq!(shards.len(), SHARDS);
        assert_eq!(
            shards.iter().map(|s| s.intern_hits).sum::<u64>(),
            total.intern_hits
        );
        assert_eq!(
            shards.iter().map(|s| s.intern_misses).sum::<u64>(),
            total.intern_misses
        );
        assert_eq!(shards.iter().map(|s| s.op_hits).sum::<u64>(), total.op_hits);
        assert_eq!(
            shards.iter().map(|s| s.op_misses).sum::<u64>(),
            total.op_misses
        );
        assert_eq!(
            shards.iter().map(|s| s.entries).sum::<usize>(),
            total.formulas,
            "every interned formula lives in exactly one shard index"
        );
    }

    #[test]
    fn concurrent_interning_converges() {
        let store = DnfStore::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let id = store.intern(Dnf::new(vec![m(&[i % 10, 10 + i % 7])]));
                        let back = store.get(id);
                        assert_eq!(store.intern((*back).clone()), id);
                        let _ = store.restrict(id, VarId(t % 10), t % 2 == 0);
                    }
                });
            }
        });
        // At most: 2 constants + 50 distinct monomial pairs + restrictions.
        let n = store.len();
        assert!(n >= 3, "formulas were interned: {n}");
        // Re-interning everything changes nothing.
        let before = store.len();
        for i in 0..50u32 {
            store.intern(Dnf::new(vec![m(&[i % 10, 10 + i % 7])]));
        }
        assert_eq!(store.len(), before);
    }

    #[test]
    fn journal_sees_new_interns_in_id_order_and_no_hits() {
        struct Tape(std::sync::Mutex<Vec<(DnfId, Dnf)>>);
        impl InternJournal for Tape {
            fn on_intern(&self, id: DnfId, dnf: &Dnf) {
                self.0.lock().unwrap().push((id, dnf.clone()));
            }
        }
        let store = DnfStore::new();
        let pre = store.intern(Dnf::new(vec![m(&[9])])); // before the journal
        let tape = Arc::new(Tape(std::sync::Mutex::new(Vec::new())));
        store.set_journal(Arc::clone(&tape) as Arc<dyn InternJournal>);
        let a = store.intern(Dnf::new(vec![m(&[1, 2])]));
        let b = store.intern(Dnf::new(vec![m(&[3])]));
        assert_eq!(store.intern(Dnf::new(vec![m(&[1, 2])])), a); // hit: not journaled
        assert_eq!(store.intern(Dnf::new(vec![m(&[9])])), pre); // hit: not journaled
        let seen = tape.0.lock().unwrap().clone();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, a);
        assert_eq!(seen[1].0, b);
        assert_eq!(seen[0].1, *store.get(a));
        // Ids arrive in allocation order.
        assert!(seen[0].0 < seen[1].0);
        store.clear_journal();
        store.intern(Dnf::new(vec![m(&[4])]));
        assert_eq!(tape.0.lock().unwrap().len(), 2);
        // Export is in id order and covers everything incl. constants.
        let all = store.export_formulas();
        assert_eq!(all.len(), store.len());
        assert!(all[0].is_false() && all[1].is_true());
        assert_eq!(*all[a.index()], *store.get(a));
        assert_eq!(DnfId::from_index(a.index()), a);
    }

    #[test]
    fn ids_stay_dense_and_distinct_across_shards() {
        // Interning K distinct formulas from many threads allocates exactly
        // K consecutive ids even though the index is sharded.
        let store = DnfStore::new();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..64u32 {
                        store.intern(Dnf::new(vec![m(&[t * 64 + i])]));
                    }
                });
            }
        });
        assert_eq!(store.len(), 2 + 4 * 64);
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u32 {
            for t in 0..4u32 {
                let id = store.intern(Dnf::new(vec![m(&[t * 64 + i])]));
                assert!(seen.insert(id), "duplicate id {id:?}");
                assert_eq!(*store.get(id), Dnf::new(vec![m(&[t * 64 + i])]));
            }
        }
    }
}
