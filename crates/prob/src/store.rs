//! A hash-consed store of DNF formulas.
//!
//! [`DnfStore`] interns every distinct [`Dnf`] once and hands out stable
//! [`DnfId`]s. Structurally equal formulas — however they were built — map
//! to the same id and the same `Arc<Dnf>` allocation, so:
//!
//! * equality between stored formulas is an integer compare;
//! * downstream caches (probability memo tables, extraction results) can key
//!   on `DnfId` instead of hashing whole formulas;
//! * the algebraic operations ([`DnfStore::or`], [`DnfStore::and`],
//!   [`DnfStore::restrict`]) are memoized per *id*, so e.g. an influence
//!   query restricting the same base formula on fifty candidate literals
//!   normalises each restriction only once per process lifetime.
//!
//! The store is append-only behind an `RwLock`: interning never invalidates
//! an id, which is what makes it safe to share one store across concurrent
//! query sessions (see `p3-core`'s `QuerySession`).

use crate::dnf::Dnf;
use crate::var::VarId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A stable handle to an interned formula. Ids are only meaningful for the
/// store that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DnfId(u32);

impl DnfId {
    /// The constant `false` formula — always id 0 in every store.
    pub const FALSE: DnfId = DnfId(0);
    /// The constant `true` formula — always id 1 in every store.
    pub const TRUE: DnfId = DnfId(1);

    /// The raw index (useful for dense side tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Counters describing store effectiveness; all monotonically increasing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct formulas interned.
    pub formulas: usize,
    /// `intern` calls that found an existing formula.
    pub intern_hits: u64,
    /// `intern` calls that added a new formula.
    pub intern_misses: u64,
    /// Memoized op lookups (`or`/`and`/`restrict`) answered from cache.
    pub op_hits: u64,
    /// Memoized op lookups that had to compute.
    pub op_misses: u64,
}

#[derive(Default)]
struct Inner {
    formulas: Vec<Arc<Dnf>>,
    index: HashMap<Arc<Dnf>, u32>,
    restrict_cache: HashMap<(DnfId, VarId, bool), DnfId>,
    or_cache: HashMap<(DnfId, DnfId), DnfId>,
    and_cache: HashMap<(DnfId, DnfId), DnfId>,
    stats: StoreStats,
}

impl Inner {
    /// Returns the id and whether the formula was newly inserted. Hit
    /// accounting lives in the atomic counters on [`DnfStore`], outside the
    /// lock.
    fn intern(&mut self, dnf: Dnf) -> (DnfId, bool) {
        if let Some(&id) = self.index.get(&dnf) {
            return (DnfId(id), false);
        }
        let id = u32::try_from(self.formulas.len()).expect("DnfStore overflow");
        let arc = Arc::new(dnf);
        self.formulas.push(Arc::clone(&arc));
        self.index.insert(arc, id);
        self.stats.intern_misses += 1;
        self.stats.formulas = self.formulas.len();
        (DnfId(id), true)
    }
}

/// A thread-safe, append-only interner of [`Dnf`] formulas with memoized
/// algebraic operations. See the module docs for the design rationale.
///
/// Hit counters are atomics so cache-hit paths never touch the write lock
/// (taking it while the hit path's read guard is alive would self-deadlock).
pub struct DnfStore {
    inner: RwLock<Inner>,
    intern_hits: AtomicU64,
    op_hits: AtomicU64,
}

impl Default for DnfStore {
    fn default() -> Self {
        Self::new()
    }
}

impl DnfStore {
    /// An empty store with the constants pre-interned at [`DnfId::FALSE`]
    /// and [`DnfId::TRUE`].
    pub fn new() -> Self {
        let mut inner = Inner::default();
        let (zero, _) = inner.intern(Dnf::zero());
        let (one, _) = inner.intern(Dnf::one());
        debug_assert_eq!(zero, DnfId::FALSE);
        debug_assert_eq!(one, DnfId::TRUE);
        // The two constants are structural, not client traffic.
        inner.stats.intern_misses = 0;
        Self {
            inner: RwLock::new(inner),
            intern_hits: AtomicU64::new(0),
            op_hits: AtomicU64::new(0),
        }
    }

    /// Interns `dnf`, returning its stable id. Structurally equal formulas
    /// always receive the same id (and share one allocation).
    pub fn intern(&self, dnf: Dnf) -> DnfId {
        // Fast path: a read lock suffices for formulas already present.
        {
            let inner = self.inner.read().unwrap();
            if let Some(&id) = inner.index.get(&dnf) {
                self.intern_hits.fetch_add(1, Ordering::Relaxed);
                return DnfId(id);
            }
        }
        let (id, new) = self.inner.write().unwrap().intern(dnf);
        if !new {
            // Lost a race: someone interned it between the two locks.
            self.intern_hits.fetch_add(1, Ordering::Relaxed);
        }
        id
    }

    /// The formula behind `id`. The `Arc` is shared with the store, so two
    /// equal formulas are pointer-equal: `Arc::ptr_eq(&s.get(a), &s.get(a))`.
    ///
    /// # Panics
    /// If `id` did not come from this store.
    pub fn get(&self, id: DnfId) -> Arc<Dnf> {
        Arc::clone(&self.inner.read().unwrap().formulas[id.index()])
    }

    /// Shorthand for interning a single-literal formula.
    pub fn literal(&self, var: VarId) -> DnfId {
        self.intern(Dnf::literal(var))
    }

    /// Memoized disjunction `a + b`.
    pub fn or(&self, a: DnfId, b: DnfId) -> DnfId {
        // Identities dodge both the cache and the normalisation.
        if a == DnfId::FALSE || a == b {
            return b;
        }
        if b == DnfId::FALSE {
            return a;
        }
        if a == DnfId::TRUE || b == DnfId::TRUE {
            return DnfId::TRUE;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.inner.read().unwrap().or_cache.get(&key) {
            self.op_hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        let (fa, fb) = (self.get(a), self.get(b));
        let result = fa.or(&fb);
        let mut inner = self.inner.write().unwrap();
        let (id, _) = inner.intern(result);
        inner.or_cache.insert(key, id);
        inner.stats.op_misses += 1;
        id
    }

    /// Memoized conjunction `a · b`.
    pub fn and(&self, a: DnfId, b: DnfId) -> DnfId {
        if a == DnfId::FALSE || b == DnfId::FALSE {
            return DnfId::FALSE;
        }
        if a == DnfId::TRUE || a == b {
            return b;
        }
        if b == DnfId::TRUE {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.inner.read().unwrap().and_cache.get(&key) {
            self.op_hits.fetch_add(1, Ordering::Relaxed);
            return id;
        }
        let (fa, fb) = (self.get(a), self.get(b));
        let result = fa.and(&fb);
        let mut inner = self.inner.write().unwrap();
        let (id, _) = inner.intern(result);
        inner.and_cache.insert(key, id);
        inner.stats.op_misses += 1;
        id
    }

    /// Memoized restriction `formula | var = value`.
    pub fn restrict(&self, id: DnfId, var: VarId, value: bool) -> DnfId {
        if id == DnfId::FALSE || id == DnfId::TRUE {
            return id;
        }
        let key = (id, var, value);
        if let Some(&cached) = self.inner.read().unwrap().restrict_cache.get(&key) {
            self.op_hits.fetch_add(1, Ordering::Relaxed);
            return cached;
        }
        let result = self.get(id).restrict(var, value);
        let mut inner = self.inner.write().unwrap();
        let (out, _) = inner.intern(result);
        inner.restrict_cache.insert(key, out);
        inner.stats.op_misses += 1;
        out
    }

    /// Number of distinct formulas interned (including the two constants).
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().formulas.len()
    }

    /// Whether only the constants are present.
    pub fn is_empty(&self) -> bool {
        self.len() <= 2
    }

    /// A snapshot of the effectiveness counters.
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.inner.read().unwrap().stats;
        stats.intern_hits = self.intern_hits.load(Ordering::Relaxed);
        stats.op_hits = self.op_hits.load(Ordering::Relaxed);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Monomial;

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| VarId(i)).collect())
    }

    #[test]
    fn constants_have_fixed_ids() {
        let store = DnfStore::new();
        assert_eq!(store.intern(Dnf::zero()), DnfId::FALSE);
        assert_eq!(store.intern(Dnf::one()), DnfId::TRUE);
        assert!(store.get(DnfId::FALSE).is_false());
        assert!(store.get(DnfId::TRUE).is_true());
    }

    #[test]
    fn structurally_equal_formulas_share_an_id_and_allocation() {
        let store = DnfStore::new();
        let a = store.intern(Dnf::new(vec![m(&[1, 2]), m(&[3])]));
        // Built differently (different monomial order, pre-normal input).
        let b = store.intern(Dnf::new(vec![m(&[3]), m(&[2, 1]), m(&[1, 2, 3])]));
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&store.get(a), &store.get(b)));
        let stats = store.stats();
        assert_eq!(stats.intern_hits, 1);
    }

    #[test]
    fn or_and_restrict_match_direct_operations() {
        let store = DnfStore::new();
        let fa = Dnf::new(vec![m(&[1, 2])]);
        let fb = Dnf::new(vec![m(&[2, 3]), m(&[4])]);
        let a = store.intern(fa.clone());
        let b = store.intern(fb.clone());
        assert_eq!(*store.get(store.or(a, b)), fa.or(&fb));
        assert_eq!(*store.get(store.and(a, b)), fa.and(&fb));
        assert_eq!(
            *store.get(store.restrict(a, VarId(1), true)),
            fa.restrict(VarId(1), true)
        );
        assert_eq!(
            *store.get(store.restrict(a, VarId(1), false)),
            fa.restrict(VarId(1), false)
        );
    }

    #[test]
    fn identities_short_circuit() {
        let store = DnfStore::new();
        let a = store.intern(Dnf::new(vec![m(&[1])]));
        assert_eq!(store.or(a, DnfId::FALSE), a);
        assert_eq!(store.or(DnfId::FALSE, a), a);
        assert_eq!(store.or(a, DnfId::TRUE), DnfId::TRUE);
        assert_eq!(store.or(a, a), a);
        assert_eq!(store.and(a, DnfId::TRUE), a);
        assert_eq!(store.and(DnfId::TRUE, a), a);
        assert_eq!(store.and(a, DnfId::FALSE), DnfId::FALSE);
        assert_eq!(store.and(a, a), a);
        assert_eq!(store.restrict(DnfId::TRUE, VarId(0), false), DnfId::TRUE);
        // None of the above should have populated an op cache.
        assert_eq!(store.stats().op_misses, 0);
    }

    #[test]
    fn ops_are_memoized() {
        let store = DnfStore::new();
        let a = store.intern(Dnf::new(vec![m(&[1, 2]), m(&[3])]));
        let first = store.restrict(a, VarId(1), true);
        let misses_after_first = store.stats().op_misses;
        let second = store.restrict(a, VarId(1), true);
        assert_eq!(first, second);
        assert_eq!(store.stats().op_misses, misses_after_first);
        assert!(store.stats().op_hits >= 1);
        // Commutative key: or(a, b) and or(b, a) share a cache entry.
        let b = store.intern(Dnf::new(vec![m(&[4])]));
        let ab = store.or(a, b);
        let hits = store.stats().op_hits;
        assert_eq!(store.or(b, a), ab);
        assert_eq!(store.stats().op_hits, hits + 1);
    }

    #[test]
    fn concurrent_interning_converges() {
        let store = DnfStore::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..50u32 {
                        let id = store.intern(Dnf::new(vec![m(&[i % 10, 10 + i % 7])]));
                        let back = store.get(id);
                        assert_eq!(store.intern((*back).clone()), id);
                        let _ = store.restrict(id, VarId(t % 10), t % 2 == 0);
                    }
                });
            }
        });
        // At most: 2 constants + 50 distinct monomial pairs + restrictions.
        let n = store.len();
        assert!(n >= 3, "formulas were interned: {n}");
        // Re-interning everything changes nothing.
        let before = store.len();
        for i in 0..50u32 {
            store.intern(Dnf::new(vec![m(&[i % 10, 10 + i % 7])]));
        }
        assert_eq!(store.len(), before);
    }
}
