//! The variable universe: one Boolean random variable per program clause.

use std::fmt;

/// Identifies a Boolean random variable in a [`VarTable`].
///
/// In P3 there is one variable per clause; the provenance layer keeps the
/// mapping between clause ids and variable ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The set of Boolean random variables with their success probabilities and
/// display names.
#[derive(Clone, Default, Debug)]
pub struct VarTable {
    probs: Vec<f64>,
    names: Vec<String>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with display `name` and probability `prob`.
    ///
    /// # Panics
    /// Panics if `prob` is outside `[0, 1]` or not finite.
    pub fn add(&mut self, name: impl Into<String>, prob: f64) -> VarId {
        assert!(
            prob.is_finite() && (0.0..=1.0).contains(&prob),
            "probability {prob} out of range"
        );
        let id = VarId(u32::try_from(self.probs.len()).expect("variable table overflow"));
        self.probs.push(prob);
        self.names.push(name.into());
        id
    }

    /// The probability of `var` being true.
    #[inline]
    pub fn prob(&self, var: VarId) -> f64 {
        self.probs[var.index()]
    }

    /// Replaces the probability of `var`. Used by modification queries.
    pub fn set_prob(&mut self, var: VarId, prob: f64) {
        assert!(
            prob.is_finite() && (0.0..=1.0).contains(&prob),
            "probability {prob} out of range"
        );
        self.probs[var.index()] = prob;
    }

    /// The display name of `var`.
    pub fn name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// All probabilities, indexed by variable.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Iterates over all variable ids.
    pub fn ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.probs.len() as u32).map(VarId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_back() {
        let mut t = VarTable::new();
        let a = t.add("r1", 0.8);
        let b = t.add("t4", 0.4);
        assert_eq!(t.prob(a), 0.8);
        assert_eq!(t.prob(b), 0.4);
        assert_eq!(t.name(a), "r1");
        assert_eq!(t.len(), 2);
        assert_eq!(t.ids().collect::<Vec<_>>(), vec![a, b]);
    }

    #[test]
    fn set_prob_overwrites() {
        let mut t = VarTable::new();
        let a = t.add("r1", 0.8);
        t.set_prob(a, 0.56);
        assert_eq!(t.prob(a), 0.56);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_rejects_out_of_range() {
        VarTable::new().add("bad", 1.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_prob_rejects_nan() {
        let mut t = VarTable::new();
        let a = t.add("r1", 0.8);
        t.set_prob(a, f64::NAN);
    }
}
