//! Exact success probability of a monotone DNF.
//!
//! Computing `P[λ]` exactly is #P-hard in general (Valiant), but provenance
//! polynomials from small-to-medium queries decompose well:
//!
//! 1. **Independence factoring** — monomials are grouped into connected
//!    components of the "shares a variable" relation; components are
//!    independent, so `P[λ] = 1 − Π (1 − P[component])`.
//! 2. **Shannon expansion** — within a component, expand on the most
//!    frequent variable: `P = p·P[λ|x=1] + (1−p)·P[λ|x=0]`, with
//!    memoization on the restricted formulas.
//!
//! A work budget guards against blow-up; [`probability`] panics past it,
//! [`try_probability`] reports [`ExactError::BudgetExceeded`] so callers can
//! fall back to Monte-Carlo.

use crate::dnf::Dnf;
use crate::var::{VarId, VarTable};
use std::collections::HashMap;

/// Default work budget (number of Shannon expansion steps).
pub const DEFAULT_BUDGET: usize = 1 << 22;

/// Why an exact computation was abandoned.
#[derive(Debug, PartialEq, Eq)]
pub enum ExactError {
    /// More expansion steps than the budget allows.
    BudgetExceeded {
        /// The budget that was exhausted.
        budget: usize,
    },
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::BudgetExceeded { budget } => {
                write!(
                    f,
                    "exact probability exceeded budget of {budget} expansion steps"
                )
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// Exact `P[λ]` with the default budget.
///
/// # Panics
/// Panics if the formula exceeds [`DEFAULT_BUDGET`] expansion steps; use
/// [`try_probability`] to handle that case.
pub fn probability(dnf: &Dnf, vars: &VarTable) -> f64 {
    try_probability(dnf, vars, DEFAULT_BUDGET).expect("exact probability budget exceeded")
}

/// Exact `P[λ]`, abandoning past `budget` expansion steps.
pub fn try_probability(dnf: &Dnf, vars: &VarTable, budget: usize) -> Result<f64, ExactError> {
    let mut span = p3_obs::span::span("prob.exact");
    span.add_field("monomials", dnf.len() as u64);
    let mut cx = Cx {
        vars,
        memo: HashMap::new(),
        steps: 0,
        budget,
    };
    cx.prob(dnf)
}

struct Cx<'a> {
    vars: &'a VarTable,
    memo: HashMap<Dnf, f64>,
    steps: usize,
    budget: usize,
}

impl Cx<'_> {
    fn prob(&mut self, dnf: &Dnf) -> Result<f64, ExactError> {
        if dnf.is_false() {
            return Ok(0.0);
        }
        if dnf.is_true() {
            return Ok(1.0);
        }
        if dnf.len() == 1 {
            return Ok(dnf.monomials()[0].probability(self.vars));
        }
        if let Some(&p) = self.memo.get(dnf) {
            return Ok(p);
        }
        self.steps += 1;
        if self.steps > self.budget {
            return Err(ExactError::BudgetExceeded {
                budget: self.budget,
            });
        }

        let components = components(dnf);
        let p = if components.len() > 1 {
            // Independent alternatives: P[∪ Ci] = 1 − Π(1 − P[Ci]).
            let mut q = 1.0f64;
            for c in components {
                q *= 1.0 - self.prob(&c)?;
            }
            1.0 - q
        } else {
            // Shannon expansion on the most frequent variable.
            let x = most_frequent_var(dnf);
            let p_x = self.vars.prob(x);
            let hi = self.prob(&dnf.restrict(x, true))?;
            let lo = self.prob(&dnf.restrict(x, false))?;
            p_x * hi + (1.0 - p_x) * lo
        };
        self.memo.insert(dnf.clone(), p);
        Ok(p)
    }
}

/// Groups monomials into connected components of the shares-a-variable
/// relation, returning each component as its own DNF. Components are
/// mutually independent events.
fn components(dnf: &Dnf) -> Vec<Dnf> {
    let n = dnf.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut owner: HashMap<VarId, usize> = HashMap::new();
    for (i, m) in dnf.monomials().iter().enumerate() {
        for &lit in m.literals() {
            match owner.get(&lit) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    owner.insert(lit, i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    let mut out: Vec<Dnf> = groups.into_values().map(|idx| dnf.select(&idx)).collect();
    // Deterministic order for memo friendliness.
    out.sort_by(|a, b| a.monomials().cmp(b.monomials()));
    out
}

/// The variable occurring in the most monomials (ties broken by id).
fn most_frequent_var(dnf: &Dnf) -> VarId {
    let mut counts: HashMap<VarId, usize> = HashMap::new();
    for m in dnf.monomials() {
        for &lit in m.literals() {
            *counts.entry(lit).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
        .expect("non-constant DNF has variables")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Monomial;

    fn table(probs: &[f64]) -> VarTable {
        let mut t = VarTable::new();
        for (i, &p) in probs.iter().enumerate() {
            t.add(format!("x{i}"), p);
        }
        t
    }

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| VarId(i)).collect())
    }

    #[test]
    fn constants() {
        let vars = table(&[0.5]);
        assert_eq!(probability(&Dnf::zero(), &vars), 0.0);
        assert_eq!(probability(&Dnf::one(), &vars), 1.0);
    }

    #[test]
    fn single_monomial_is_a_product() {
        let vars = table(&[0.5, 0.4]);
        let dnf = Dnf::new(vec![m(&[0, 1])]);
        assert!((probability(&dnf, &vars) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn disjoint_union_inclusion_exclusion() {
        // P[a + b] = 1 − (1−0.5)(1−0.4) = 0.7 for independent a, b.
        let vars = table(&[0.5, 0.4]);
        let dnf = Dnf::new(vec![m(&[0]), m(&[1])]);
        assert!((probability(&dnf, &vars) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn shared_variable_requires_shannon() {
        // λ = a·b + a·c: P = p_a (1 − (1−p_b)(1−p_c)).
        let vars = table(&[0.5, 0.4, 0.2]);
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[0, 2])]);
        let expected = 0.5 * (1.0 - 0.6 * 0.8);
        assert!((probability(&dnf, &vars) - expected).abs() < 1e-12);
    }

    #[test]
    fn acquaintance_polynomial_exact_value() {
        // λ = r3·t6·(r1·t1·t2 + r2·t4·t5) with the Fig 2 probabilities.
        // vars: 0=r1 0.8, 1=r2 0.4, 2=r3 0.2, 3=t1 1.0, 4=t2 1.0,
        //       5=t4 0.4, 6=t5 0.6, 7=t6 1.0
        let vars = table(&[0.8, 0.4, 0.2, 1.0, 1.0, 0.4, 0.6, 1.0]);
        let dnf = Dnf::new(vec![m(&[2, 7, 0, 3, 4]), m(&[2, 7, 1, 5, 6])]);
        let expected = 0.2 * (1.0 - (1.0 - 0.8) * (1.0 - 0.4 * 0.4 * 0.6));
        assert!((probability(&dnf, &vars) - expected).abs() < 1e-12);
        assert!((expected - 0.16384).abs() < 1e-12);
    }

    #[test]
    fn brute_force_cross_check() {
        // Compare Shannon result against 2^n enumeration on a tangled DNF.
        let probs = [0.3, 0.6, 0.5, 0.8, 0.2];
        let vars = table(&probs);
        let dnf = Dnf::new(vec![
            m(&[0, 1]),
            m(&[1, 2]),
            m(&[2, 3]),
            m(&[3, 4]),
            m(&[0, 4]),
        ]);
        let mut expected = 0.0;
        for world in 0u32..(1 << probs.len()) {
            let mut weight = 1.0;
            let mut assignment = crate::assignment::Assignment::new(probs.len());
            for (i, &p) in probs.iter().enumerate() {
                if world & (1 << i) != 0 {
                    weight *= p;
                    assignment.set(VarId(i as u32), true);
                } else {
                    weight *= 1.0 - p;
                }
            }
            if dnf.eval(&assignment) {
                expected += weight;
            }
        }
        assert!((probability(&dnf, &vars) - expected).abs() < 1e-12);
    }

    #[test]
    fn components_split_independent_groups() {
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[1, 2]), m(&[3, 4]), m(&[5])]);
        let comps = components(&dnf);
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = comps.iter().map(Dnf::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 1, 2]);
    }

    #[test]
    fn budget_exceeded_is_reported() {
        // A grid-like DNF with many shared variables and budget 1.
        let vars = table(&[0.5; 8]);
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[1, 2]), m(&[2, 3]), m(&[3, 0])]);
        match try_probability(&dnf, &vars, 1) {
            Err(ExactError::BudgetExceeded { budget: 1 }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn deterministic_variables_simplify() {
        // p=1 and p=0 literals behave as constants.
        let vars = table(&[1.0, 0.0, 0.5]);
        let dnf = Dnf::new(vec![m(&[0, 2]), m(&[1])]);
        assert!((probability(&dnf, &vars) - 0.5).abs() < 1e-12);
    }
}
