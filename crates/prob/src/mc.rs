//! Monte-Carlo estimation of DNF probabilities and influence.
//!
//! The paper evaluates success probabilities by Monte-Carlo simulation
//! (§3.3, citing Karp–Luby) and influence values by the estimator implied by
//! Definition 4.1, `Inf_x(λ) = E[λ|x=1 − λ|x=0]`. This module implements:
//!
//! * [`estimate`] — the naive sampler: draw a world, evaluate the formula;
//! * [`karp_luby`] — the Karp–Luby union ("coverage") estimator, whose
//!   relative error does not degrade when `P[λ]` is small;
//! * [`influence`] — a paired common-random-numbers estimator that
//!   evaluates both restrictions `λ|x=1` and `λ|x=0` on the *same* sample,
//!   cancelling most sampling noise (the formula is monotone, so the paired
//!   difference is simply an indicator).
//!
//! All estimators are deterministic given [`McConfig::seed`].

use crate::dnf::Dnf;
use crate::var::{VarId, VarTable};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Monte-Carlo parameters.
///
/// `Eq`/`Hash` hold because both fields are integers; session caches key
/// probability results on `(DnfId, ProbMethod)`, which embeds this config.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct McConfig {
    /// Number of samples to draw.
    pub samples: usize,
    /// RNG seed; equal configs yield equal estimates.
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            samples: 100_000,
            seed: 0x7033,
        }
    }
}

impl McConfig {
    /// A config with `samples` samples and the default seed.
    pub fn with_samples(samples: usize) -> Self {
        Self {
            samples,
            ..Self::default()
        }
    }

    /// Returns a copy with a different seed (used to give worker threads
    /// independent streams).
    pub fn reseeded(self, seed: u64) -> Self {
        Self { seed, ..self }
    }
}

/// A DNF compiled to dense slot indices over exactly the variables it uses.
/// Sampling then touches only live variables.
#[derive(Clone, Debug)]
pub struct CompiledDnf {
    monomials: Vec<Vec<u32>>,
    slot_probs: Vec<f64>,
    slot_vars: Vec<VarId>,
}

impl CompiledDnf {
    /// Compiles `dnf`, reading probabilities from `vars`.
    pub fn compile(dnf: &Dnf, vars: &VarTable) -> Self {
        let slot_vars = dnf.vars();
        let slot_of = |v: VarId| -> u32 {
            slot_vars
                .binary_search(&v)
                .expect("dnf var missing from its own var list") as u32
        };
        let monomials = dnf
            .monomials()
            .iter()
            .map(|m| m.literals().iter().map(|&l| slot_of(l)).collect())
            .collect();
        let slot_probs = slot_vars.iter().map(|&v| vars.prob(v)).collect();
        Self {
            monomials,
            slot_probs,
            slot_vars,
        }
    }

    /// Number of distinct variables.
    pub fn num_slots(&self) -> usize {
        self.slot_vars.len()
    }

    /// The variable occupying `slot`.
    pub fn slot_var(&self, slot: usize) -> VarId {
        self.slot_vars[slot]
    }

    /// The slot of `var`, if it occurs in the formula.
    pub fn slot_of(&self, var: VarId) -> Option<usize> {
        self.slot_vars.binary_search(&var).ok()
    }

    #[inline]
    fn sample_into(&self, bits: &mut [bool], rng: &mut SmallRng) {
        for (bit, &p) in bits.iter_mut().zip(&self.slot_probs) {
            *bit = rng.random::<f64>() < p;
        }
    }

    #[inline]
    fn eval(&self, bits: &[bool]) -> bool {
        self.monomials
            .iter()
            .any(|m| m.iter().all(|&s| bits[s as usize]))
    }

    /// Evaluates with `slot` forced to `value`, ignoring its sampled bit.
    #[inline]
    fn eval_forced(&self, bits: &[bool], slot: u32, value: bool) -> bool {
        self.monomials.iter().any(|m| {
            m.iter()
                .all(|&s| if s == slot { value } else { bits[s as usize] })
        })
    }
}

/// A Monte-Carlo estimate together with its sampling uncertainty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// The point estimate.
    pub value: f64,
    /// The standard error `sqrt(p̂(1−p̂)/n)`.
    pub std_error: f64,
    /// Samples actually drawn.
    pub samples: usize,
}

impl Estimate {
    /// A 95% confidence interval (normal approximation), clamped to
    /// `[0, 1]`.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error;
        ((self.value - half).max(0.0), (self.value + half).min(1.0))
    }
}

/// Naive estimate with sampling statistics.
pub fn estimate_with_stats(dnf: &Dnf, vars: &VarTable, cfg: McConfig) -> Estimate {
    let mut span = p3_obs::span::span("prob.mc");
    span.add_field("samples", cfg.samples as u64);
    let value = estimate(dnf, vars, cfg);
    let n = cfg.samples.max(1);
    Estimate {
        value,
        std_error: (value * (1.0 - value) / n as f64).sqrt(),
        samples: n,
    }
}

/// Adaptive naive estimation: draws batches until the 95% confidence
/// half-width falls below `target_half_width` (or `max_samples` is hit).
///
/// Useful when callers need a guaranteed precision rather than a fixed
/// budget — e.g. Derivation Queries deciding whether a dropped monomial
/// keeps the error within ε.
pub fn estimate_adaptive(
    dnf: &Dnf,
    vars: &VarTable,
    seed: u64,
    target_half_width: f64,
    max_samples: usize,
) -> Estimate {
    assert!(
        target_half_width > 0.0,
        "target half-width must be positive"
    );
    if dnf.is_false() {
        return Estimate {
            value: 0.0,
            std_error: 0.0,
            samples: 0,
        };
    }
    if dnf.is_true() {
        return Estimate {
            value: 1.0,
            std_error: 0.0,
            samples: 0,
        };
    }
    const BATCH: usize = 4096;
    let compiled = CompiledDnf::compile(dnf, vars);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut bits = vec![false; compiled.num_slots()];
    let mut hits = 0usize;
    let mut n = 0usize;
    loop {
        for _ in 0..BATCH {
            compiled.sample_into(&mut bits, &mut rng);
            if compiled.eval(&bits) {
                hits += 1;
            }
        }
        n += BATCH;
        let p = hits as f64 / n as f64;
        let se = (p * (1.0 - p) / n as f64).sqrt();
        if 1.96 * se <= target_half_width || n >= max_samples {
            return Estimate {
                value: p,
                std_error: se,
                samples: n,
            };
        }
    }
}

/// Naive Monte-Carlo estimate of `P[λ]`.
pub fn estimate(dnf: &Dnf, vars: &VarTable, cfg: McConfig) -> f64 {
    if dnf.is_false() {
        return 0.0;
    }
    if dnf.is_true() {
        return 1.0;
    }
    let compiled = CompiledDnf::compile(dnf, vars);
    estimate_compiled(&compiled, cfg)
}

/// Naive estimate over an already-compiled formula.
pub fn estimate_compiled(compiled: &CompiledDnf, cfg: McConfig) -> f64 {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut bits = vec![false; compiled.num_slots()];
    let mut hits = 0usize;
    for _ in 0..cfg.samples {
        compiled.sample_into(&mut bits, &mut rng);
        if compiled.eval(&bits) {
            hits += 1;
        }
    }
    hits as f64 / cfg.samples.max(1) as f64
}

/// The Karp–Luby coverage estimator of `P[⋃ monomials]`.
///
/// Draw a monomial `i` with probability `P(m_i)/U` (where `U = Σ P(m_j)`),
/// then a world conditioned on `m_i` being true; the unbiased estimate is
/// `U · E[1/N]` with `N` the number of satisfied monomials in that world.
pub fn karp_luby(dnf: &Dnf, vars: &VarTable, cfg: McConfig) -> f64 {
    let mut span = p3_obs::span::span("prob.karp_luby");
    span.add_field("samples", cfg.samples as u64);
    if dnf.is_false() {
        return 0.0;
    }
    if dnf.is_true() {
        return 1.0;
    }
    let compiled = CompiledDnf::compile(dnf, vars);
    let weights: Vec<f64> = dnf
        .monomials()
        .iter()
        .map(|m| m.probability(vars))
        .collect();
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut bits = vec![false; compiled.num_slots()];
    let mut acc = 0.0f64;
    for _ in 0..cfg.samples {
        // Weighted monomial choice by cumulative scan; the monomial count is
        // modest so a linear scan beats building an alias table here.
        let mut pick = rng.random::<f64>() * total;
        let mut chosen = compiled.monomials.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            pick -= w;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        // Sample a world conditioned on the chosen monomial being true.
        compiled.sample_into(&mut bits, &mut rng);
        for &slot in &compiled.monomials[chosen] {
            bits[slot as usize] = true;
        }
        let satisfied = compiled
            .monomials
            .iter()
            .filter(|m| m.iter().all(|&s| bits[s as usize]))
            .count();
        debug_assert!(satisfied >= 1, "the conditioned monomial is satisfied");
        acc += 1.0 / satisfied as f64;
    }
    (total * acc / cfg.samples.max(1) as f64).min(1.0)
}

/// Paired Monte-Carlo estimate of `Inf_x(λ) = P[λ|x=1] − P[λ|x=0]`
/// (Definition 4.1). For monotone formulas the paired difference is an
/// indicator, so the estimate is a simple hit ratio.
pub fn influence(dnf: &Dnf, vars: &VarTable, x: VarId, cfg: McConfig) -> f64 {
    let compiled = CompiledDnf::compile(dnf, vars);
    influence_compiled(&compiled, x, cfg)
}

/// Paired influence estimate over an already-compiled formula. Returns 0
/// when `x` does not occur in the formula.
pub fn influence_compiled(compiled: &CompiledDnf, x: VarId, cfg: McConfig) -> f64 {
    let Some(slot) = compiled.slot_of(x) else {
        return 0.0;
    };
    let slot = slot as u32;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut bits = vec![false; compiled.num_slots()];
    let mut hits = 0usize;
    for _ in 0..cfg.samples {
        compiled.sample_into(&mut bits, &mut rng);
        let hi = compiled.eval_forced(&bits, slot, true);
        if hi && !compiled.eval_forced(&bits, slot, false) {
            hits += 1;
        }
    }
    hits as f64 / cfg.samples.max(1) as f64
}

/// Influence of every variable occurring in `dnf`, sequentially.
///
/// Returns `(var, influence)` pairs sorted by descending influence (ties by
/// variable id, so the output is deterministic).
pub fn influence_all(dnf: &Dnf, vars: &VarTable, cfg: McConfig) -> Vec<(VarId, f64)> {
    let compiled = CompiledDnf::compile(dnf, vars);
    let mut out: Vec<(VarId, f64)> = dnf
        .vars()
        .into_iter()
        .map(|v| (v, influence_compiled(&compiled, v, cfg)))
        .collect();
    sort_by_influence(&mut out);
    out
}

/// Sorts `(var, influence)` pairs by descending influence, ties by id.
pub fn sort_by_influence(entries: &mut [(VarId, f64)]) {
    entries.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Monomial;
    use crate::exact;

    fn table(probs: &[f64]) -> VarTable {
        let mut t = VarTable::new();
        for (i, &p) in probs.iter().enumerate() {
            t.add(format!("x{i}"), p);
        }
        t
    }

    fn m(lits: &[u32]) -> Monomial {
        Monomial::new(lits.iter().map(|&i| VarId(i)).collect())
    }

    const CFG: McConfig = McConfig {
        samples: 200_000,
        seed: 7,
    };

    #[test]
    fn naive_estimate_converges() {
        let vars = table(&[0.5, 0.4, 0.2]);
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[0, 2])]);
        let exact = exact::probability(&dnf, &vars);
        let est = estimate(&dnf, &vars, CFG);
        assert!((est - exact).abs() < 0.01, "est={est} exact={exact}");
    }

    #[test]
    fn karp_luby_converges() {
        let vars = table(&[0.5, 0.4, 0.2]);
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[0, 2])]);
        let exact = exact::probability(&dnf, &vars);
        let est = karp_luby(&dnf, &vars, CFG);
        assert!((est - exact).abs() < 0.01, "est={est} exact={exact}");
    }

    #[test]
    fn karp_luby_handles_small_probabilities_well() {
        // P ≈ 1e-4: the naive estimator would need millions of samples; the
        // coverage estimator has bounded relative error.
        let vars = table(&[0.01, 0.01]);
        let dnf = Dnf::new(vec![m(&[0, 1])]);
        let exact = 0.0001;
        let est = karp_luby(
            &dnf,
            &vars,
            McConfig {
                samples: 50_000,
                seed: 3,
            },
        );
        assert!((est - exact).abs() / exact < 0.05, "est={est}");
    }

    #[test]
    fn estimators_are_deterministic_under_a_seed() {
        let vars = table(&[0.5, 0.4]);
        let dnf = Dnf::new(vec![m(&[0]), m(&[1])]);
        assert_eq!(estimate(&dnf, &vars, CFG), estimate(&dnf, &vars, CFG));
        assert_eq!(karp_luby(&dnf, &vars, CFG), karp_luby(&dnf, &vars, CFG));
        assert_eq!(
            influence(&dnf, &vars, VarId(0), CFG),
            influence(&dnf, &vars, VarId(0), CFG)
        );
    }

    #[test]
    fn constants() {
        let vars = table(&[0.5]);
        assert_eq!(estimate(&Dnf::zero(), &vars, CFG), 0.0);
        assert_eq!(estimate(&Dnf::one(), &vars, CFG), 1.0);
        assert_eq!(karp_luby(&Dnf::zero(), &vars, CFG), 0.0);
        assert_eq!(karp_luby(&Dnf::one(), &vars, CFG), 1.0);
    }

    #[test]
    fn influence_matches_exact_restrictions() {
        let vars = table(&[0.5, 0.4, 0.2]);
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[0, 2])]);
        for x in [VarId(0), VarId(1), VarId(2)] {
            let expected = exact::probability(&dnf.restrict(x, true), &vars)
                - exact::probability(&dnf.restrict(x, false), &vars);
            let est = influence(&dnf, &vars, x, CFG);
            assert!(
                (est - expected).abs() < 0.01,
                "{x}: est={est} expected={expected}"
            );
        }
    }

    #[test]
    fn influence_of_absent_variable_is_zero() {
        let vars = table(&[0.5, 0.4]);
        let dnf = Dnf::new(vec![m(&[0])]);
        assert_eq!(influence(&dnf, &vars, VarId(1), CFG), 0.0);
    }

    #[test]
    fn influence_all_ranks_the_acquaintance_literals() {
        // vars: 0=r1 0.8, 1=r2 0.4, 2=r3 0.2, 3=t1 1, 4=t2 1, 5=t4 0.4,
        //       6=t5 0.6, 7=t6 1. Exact influences: r3=0.8192, r1=0.1808,
        //       t6=0.16384 (see EXPERIMENTS.md; the paper's Table 2 agrees
        //       on the ranking).
        let vars = table(&[0.8, 0.4, 0.2, 1.0, 1.0, 0.4, 0.6, 1.0]);
        let dnf = Dnf::new(vec![m(&[2, 7, 0, 3, 4]), m(&[2, 7, 1, 5, 6])]);
        let ranked = influence_all(&dnf, &vars, CFG);
        assert_eq!(ranked[0].0, VarId(2), "r3 is the most influential");
        assert!((ranked[0].1 - 0.8192).abs() < 0.01);
        assert_eq!(ranked[1].0, VarId(0), "r1 is second");
        assert!((ranked[1].1 - 0.1808).abs() < 0.01);
        assert_eq!(ranked[2].0, VarId(7), "t6 is third");
        assert!((ranked[2].1 - 0.16384).abs() < 0.01);
    }

    #[test]
    fn estimate_with_stats_reports_consistent_error() {
        let vars = table(&[0.5, 0.4]);
        let dnf = Dnf::new(vec![m(&[0]), m(&[1])]);
        let e = estimate_with_stats(&dnf, &vars, CFG);
        assert_eq!(e.samples, CFG.samples);
        let expected_se = (e.value * (1.0 - e.value) / CFG.samples as f64).sqrt();
        assert!((e.std_error - expected_se).abs() < 1e-12);
        let (lo, hi) = e.ci95();
        assert!(lo <= e.value && e.value <= hi);
        assert!((hi - lo - 2.0 * 1.96 * e.std_error).abs() < 1e-12);
    }

    #[test]
    fn adaptive_estimation_meets_the_precision_target() {
        let vars = table(&[0.5, 0.4, 0.2]);
        let dnf = Dnf::new(vec![m(&[0, 1]), m(&[0, 2])]);
        let exact = crate::exact::probability(&dnf, &vars);
        let e = estimate_adaptive(&dnf, &vars, 5, 0.005, 10_000_000);
        assert!(1.96 * e.std_error <= 0.005, "claimed precision met: {e:?}");
        assert!((e.value - exact).abs() < 0.01, "est {} vs {exact}", e.value);
        // Tighter target needs more samples.
        let tight = estimate_adaptive(&dnf, &vars, 5, 0.001, 10_000_000);
        assert!(tight.samples > e.samples);
    }

    #[test]
    fn adaptive_estimation_respects_the_sample_cap() {
        let vars = table(&[0.5]);
        let dnf = Dnf::new(vec![m(&[0])]);
        let e = estimate_adaptive(&dnf, &vars, 1, 1e-9, 10_000);
        assert!(
            e.samples <= 12_288,
            "one batch over the cap at most: {}",
            e.samples
        );
    }

    #[test]
    fn adaptive_estimation_on_constants_is_free() {
        let vars = table(&[0.5]);
        let t = estimate_adaptive(&Dnf::one(), &vars, 1, 0.01, 1000);
        assert_eq!((t.value, t.samples), (1.0, 0));
        let f = estimate_adaptive(&Dnf::zero(), &vars, 1, 0.01, 1000);
        assert_eq!((f.value, f.samples), (0.0, 0));
    }

    #[test]
    fn compiled_slots_cover_only_live_variables() {
        let vars = table(&[0.5, 0.4, 0.3, 0.9]);
        let dnf = Dnf::new(vec![m(&[1, 3])]);
        let c = CompiledDnf::compile(&dnf, &vars);
        assert_eq!(c.num_slots(), 2);
        assert_eq!(c.slot_var(0), VarId(1));
        assert_eq!(c.slot_var(1), VarId(3));
        assert_eq!(c.slot_of(VarId(0)), None);
    }
}
