//! Dense bit-set truth assignments.

use crate::var::VarId;

/// A truth assignment over variables `0..n`, stored as a bit set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Assignment {
    bits: Vec<u64>,
    len: usize,
}

impl Assignment {
    /// An all-false assignment over `len` variables.
    pub fn new(len: usize) -> Self {
        Self {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the assignment covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The truth value of `var`.
    #[inline]
    pub fn get(&self, var: VarId) -> bool {
        let i = var.index();
        debug_assert!(i < self.len);
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Sets the truth value of `var`.
    #[inline]
    pub fn set(&mut self, var: VarId, value: bool) {
        let i = var.index();
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.bits[i / 64] |= mask;
        } else {
            self.bits[i / 64] &= !mask;
        }
    }

    /// Sets every variable to false.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_across_word_boundaries() {
        let mut a = Assignment::new(130);
        for i in [0u32, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!a.get(VarId(i)));
            a.set(VarId(i), true);
            assert!(a.get(VarId(i)));
        }
        a.set(VarId(64), false);
        assert!(!a.get(VarId(64)));
        assert!(a.get(VarId(63)));
        assert!(a.get(VarId(65)));
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = Assignment::new(70);
        a.set(VarId(3), true);
        a.set(VarId(69), true);
        a.clear();
        assert!(!a.get(VarId(3)));
        assert!(!a.get(VarId(69)));
    }

    #[test]
    fn zero_length_assignment() {
        let a = Assignment::new(0);
        assert!(a.is_empty());
    }
}
