//! Static cost and cardinality analysis for probabilistic logic programs.
//!
//! The EXPLAIN plane (DESIGN.md §14) attributes cost to rules *after* a
//! query ran; this crate predicts the same ranking *before* evaluating
//! anything, by abstract interpretation over the parsed program:
//!
//! * [`domain`] infers per-argument abstract domains (type + bounded
//!   value set, widened past a cap) by a forward fixpoint over clauses;
//! * [`cost`] propagates relation-cardinality bounds through joins in
//!   predicate-SCC topological order, widening recursive SCCs to their
//!   Cartesian bound, and derives per-rule predicted costs plus DNF
//!   widths and the `P37xx` prediction diagnostics;
//! * [`plan`] packages the result as an [`AnalyzePlan`] mirroring the
//!   EXPLAIN plane's `RuleCost` shape, so predicted and measured tables
//!   line up for calibration ([`plan::rank_correlation`]).
//!
//! [`recommend_mode`] is the single decision point behind
//! `EvalMode::Auto`: it recommends demand evaluation for recursive
//! programs (the syntactic rule the engine always had) *and* for flat
//! programs whose predicted join cost crosses
//! [`FLAT_DEMAND_THRESHOLD`] — the genuinely predictive upgrade.

#![warn(missing_docs)]

pub mod cost;
pub mod domain;
pub mod plan;

pub use cost::{CostModel, COST_CAP, ITER_CAP, WIDEN_AFTER, WIDE_DNF_THRESHOLD, WIDTH_CAP};
pub use domain::{AbsType, ArgDomain, Domains, VALUE_SET_CAP};
pub use plan::{rank_correlation, AnalyzePlan, PredSummary, PredictedRuleCost, QueryPrediction};

use p3_datalog::program::Program;
use std::time::Instant;

/// Flat (non-recursive) programs with predicted total cost at or above
/// this are still recommended demand evaluation: grounding the full
/// model would do this much join work even though no fixpoint iterates.
pub const FLAT_DEMAND_THRESHOLD: u64 = 100_000;

/// Analyzes `program` without reference to any particular query.
pub fn analyze(program: &Program) -> AnalyzePlan {
    analyze_inner(program, None)
}

/// Analyzes `program` and additionally predicts per-query-class work for
/// `query` (an atom like `trustPath(1,6)`; only the predicate name
/// matters to the prediction).
pub fn analyze_query(program: &Program, query: &str) -> AnalyzePlan {
    analyze_inner(program, Some(query))
}

/// The single `EvalMode::Auto` decision point: returns whether demand
/// (query-directed) evaluation is recommended and a human-readable
/// reason citing the prediction.
///
/// Recursive programs always get demand (matching the engine's historic
/// syntactic rule, so existing behavior is preserved); non-recursive
/// programs get demand only when the predicted join cost reaches
/// [`FLAT_DEMAND_THRESHOLD`].
pub fn recommend_mode(program: &Program) -> (bool, String) {
    let domains = domain::infer(program);
    let model = cost::estimate(program, &domains);
    recommend_from(&model)
}

fn recommend_from(model: &CostModel) -> (bool, String) {
    let total = model.total_cost();
    let top = model
        .rules
        .iter()
        .max_by(|a, b| a.cost().cmp(&b.cost()).then_with(|| b.label.cmp(&a.label)));
    let any_recursive = model.rules.iter().any(|r| r.recursive);
    if any_recursive {
        let label = top.map(|r| r.label.as_str()).unwrap_or("?");
        let cost = top.map(|r| r.cost()).unwrap_or(0);
        (
            true,
            format!(
                "recursive program: predicted naive fixpoint cost {total} \
                 (top rule '{label}' at {cost}); demand evaluation derives only the \
                 query-relevant fragment"
            ),
        )
    } else if total >= FLAT_DEMAND_THRESHOLD {
        (
            true,
            format!(
                "non-recursive but predicted join cost {total} >= {FLAT_DEMAND_THRESHOLD}; \
                 query-directed evaluation restricts grounding to the queried atom"
            ),
        )
    } else {
        (
            false,
            format!(
                "predicted full-model cost {total} is below the demand threshold \
                 {FLAT_DEMAND_THRESHOLD} and no rule recurses; one naive evaluation \
                 serves every query"
            ),
        )
    }
}

fn analyze_inner(program: &Program, query: Option<&str>) -> AnalyzePlan {
    let start = Instant::now();
    let domains = domain::infer(program);
    let model = cost::estimate(program, &domains);
    let (recommend_demand, reason) = recommend_from(&model);

    let symbols = program.symbols();
    let mut pred_names: Vec<p3_datalog::symbol::Symbol> = domains.args.keys().copied().collect();
    pred_names.sort_by(|a, b| symbols.resolve(*a).cmp(symbols.resolve(*b)));
    let preds: Vec<PredSummary> = pred_names
        .iter()
        .map(|&pred| {
            let edb = !program
                .clauses()
                .iter()
                .any(|c| c.is_rule() && c.head.pred == pred);
            PredSummary {
                name: symbols.resolve(pred).to_string(),
                arity: program.arity(pred).unwrap_or(0),
                edb,
                cardinality: model.card.get(&pred).copied().unwrap_or(0),
                widened: model.widened.contains(&pred),
                dnf_width: model.dnf_width.get(&pred).copied().unwrap_or(1),
                fan_in: model.fan_in.get(&pred).copied().unwrap_or(0),
                domains: domain::render_domains(&domains, pred, symbols),
            }
        })
        .collect();

    let query_prediction = query.and_then(|q| query_prediction(program, &model, q));

    let mut plan = AnalyzePlan {
        rules: model.rules.clone(),
        preds,
        diagnostics: model.diagnostics.clone(),
        recommend_demand,
        reason,
        query: query_prediction,
        analysis_us: 0,
    };
    plan.sort_rules();
    plan.analysis_us = start.elapsed().as_micros() as u64;
    publish_metrics(&plan);
    plan
}

/// Predicts per-query-class work for the predicate named in `query`.
///
/// The class multipliers are deliberately coarse — they only need to
/// order classes the way the suite's measured costs order them:
/// probability and explanation touch each monomial once; derivation
/// enumerates and sorts proofs; influence scans every literal of every
/// monomial; modification re-evaluates under toggled literals.
fn query_prediction(program: &Program, model: &CostModel, query: &str) -> Option<QueryPrediction> {
    let pred_name = query
        .split('(')
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())?;
    let pred = program.symbols().get(pred_name)?;
    let card = model.card.get(&pred).copied().unwrap_or(0);
    let width = model.dnf_width.get(&pred).copied().unwrap_or(1);
    let fan_in = model.fan_in.get(&pred).copied().unwrap_or(0);
    let log2w = 64 - width.max(1).leading_zeros() as u64;
    let classes: Vec<(&'static str, u64)> = vec![
        ("probability", width),
        ("explanation", width),
        ("derivation", width.saturating_mul(log2w.max(1))),
        ("influence", width.saturating_mul(2)),
        ("modification", width.saturating_mul(8)),
    ];
    Some(QueryPrediction {
        query: query.to_string(),
        pred: pred_name.to_string(),
        cardinality: card,
        dnf_width: width,
        proof_fanin: fan_in,
        classes,
    })
}

/// Publishes the `p3_analyze_*` metric family for one analysis run.
fn publish_metrics(plan: &AnalyzePlan) {
    p3_obs::counter!(
        "p3_analyze_runs_total",
        "Static analyses performed (p3 analyze, session analyze, service op)"
    )
    .inc();
    p3_obs::counter!(
        "p3_analyze_diagnostics_total",
        "P37xx prediction diagnostics raised by static analysis"
    )
    .add(plan.diagnostics.len() as u64);
    p3_obs::gauge!(
        "p3_analyze_predicted_cost",
        "Predicted total rule cost of the most recently analyzed program"
    )
    .set(plan.total_cost().min(i64::MAX as u64) as i64);
    p3_obs::histogram!(
        "p3_analyze_wall_us",
        "Wall time of one static analysis, microseconds"
    )
    .observe(plan.analysis_us);
    let mode = if plan.recommend_demand {
        "demand"
    } else {
        "naive"
    };
    p3_obs::metrics::labeled_counter(
        "p3_analyze_recommendations_total",
        "Eval-mode recommendations from static analysis",
        &p3_obs::metrics::render_labels(&[("mode", mode)]),
    )
    .inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trust_rules_predict_r2_as_top() {
        let program = Program::parse(
            "r1 1.0: trustPath(P1,P2) :- trust(P1,P2).\n\
             r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1 != P3.\n\
             r3 0.8: mutualTrustPath(P1,P2) :- trustPath(P1,P2), trustPath(P2,P1).\n\
             t1 0.9: trust(1,2).\nt2 0.9: trust(2,3).\nt3 0.9: trust(3,1).\n\
             t4 0.9: trust(1,4).\nt5 0.9: trust(4,5).\nt6 0.9: trust(5,6).\n",
        )
        .unwrap();
        let plan = analyze(&program);
        assert_eq!(plan.top_rule().unwrap().label, "r2");
        assert!(plan.recommend_demand);
        assert!(plan.reason.contains("recursive"));
    }

    #[test]
    fn flat_cheap_program_recommends_naive() {
        let program =
            Program::parse("t1 0.5: a(1).\nt2 0.5: b(1).\nr1 1.0: c(X) :- a(X), b(X).\n").unwrap();
        let (demand, reason) = recommend_mode(&program);
        assert!(!demand);
        assert!(reason.contains("below the demand threshold"));
    }

    #[test]
    fn flat_expensive_program_recommends_demand() {
        // A variable-disjoint body is a Cartesian product: 350 x 350
        // predicted candidates with no recursion anywhere.
        let mut src = String::new();
        for i in 0..350 {
            src.push_str(&format!("p({i}).\nq({i}).\n"));
        }
        src.push_str("r1 1.0: pair(X,Y) :- p(X), q(Y).\n");
        let program = Program::parse(&src).unwrap();
        let (demand, reason) = recommend_mode(&program);
        assert!(demand, "reason: {reason}");
        assert!(reason.contains("non-recursive"));
    }

    #[test]
    fn query_prediction_orders_classes() {
        let program =
            Program::parse("t1 0.5: edge(1,2).\nr1 1.0: path(X,Y) :- edge(X,Y).\n").unwrap();
        let plan = analyze_query(&program, "path(1,2)");
        let q = plan.query.expect("query prediction");
        assert_eq!(q.pred, "path");
        let get = |class: &str| q.classes.iter().find(|(c, _)| *c == class).unwrap().1;
        assert!(get("modification") >= get("influence"));
        assert!(get("influence") >= get("probability"));
    }

    #[test]
    fn unknown_query_pred_is_none() {
        let program = Program::parse("t1 0.5: a(1).\n").unwrap();
        assert!(analyze_query(&program, "nosuch(1)").query.is_none());
    }

    #[test]
    fn empty_program_analyzes() {
        let program = Program::parse("").unwrap();
        let plan = analyze(&program);
        assert!(plan.rules.is_empty());
        assert!(!plan.recommend_demand);
    }
}
