//! Argument-domain abstraction.
//!
//! Each predicate argument position is abstracted to an [`ArgDomain`]:
//! an [`AbsType`] (symbol / integer / both) plus a bounded set of the
//! constants known to reach that position. Sets are exact until they
//! exceed [`VALUE_SET_CAP`] distinct constants, at which point the
//! position is *widened* — the set is dropped and the position is
//! assumed to range over the whole constant universe of the program.
//!
//! Domains are inferred by a forward fixpoint over the clauses: facts
//! seed EDB positions, rules propagate the meet of each variable's body
//! occurrences into the head. The lattice is finite (capped sets over a
//! finite universe), so the fixpoint terminates; a round bound guards it
//! anyway.

use p3_datalog::ast::{Const, Term};
use p3_datalog::program::Program;
use p3_datalog::symbol::{Symbol, SymbolTable};
use std::collections::HashMap;

/// Widening threshold: past this many distinct constants a position is
/// assumed to range over the whole constant universe.
pub const VALUE_SET_CAP: usize = 64;

/// Safety bound on fixpoint rounds (the lattice is finite, so this is
/// never reached on well-formed programs; it guards hostile inputs).
const MAX_ROUNDS: usize = 256;

/// Abstract type of an argument position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbsType {
    /// No constant has reached this position yet (bottom).
    Empty,
    /// Only interned symbols observed.
    Sym,
    /// Only integers observed.
    Int,
    /// Both symbols and integers observed (top).
    Mixed,
}

impl AbsType {
    /// Least upper bound.
    pub fn join(self, other: AbsType) -> AbsType {
        use AbsType::*;
        match (self, other) {
            (Empty, t) | (t, Empty) => t,
            (Mixed, _) | (_, Mixed) => Mixed,
            (Sym, Sym) => Sym,
            (Int, Int) => Int,
            _ => Mixed,
        }
    }

    /// Greatest lower bound.
    pub fn meet(self, other: AbsType) -> AbsType {
        use AbsType::*;
        match (self, other) {
            (Empty, _) | (_, Empty) => Empty,
            (Mixed, t) | (t, Mixed) => t,
            (Sym, Sym) => Sym,
            (Int, Int) => Int,
            _ => Empty,
        }
    }

    /// The abstract type of one constant.
    pub fn of(c: &Const) -> AbsType {
        match c {
            Const::Sym(_) => AbsType::Sym,
            Const::Int(_) => AbsType::Int,
        }
    }

    /// Short name used in renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            AbsType::Empty => "empty",
            AbsType::Sym => "sym",
            AbsType::Int => "int",
            AbsType::Mixed => "mixed",
        }
    }
}

/// The abstract domain of one argument position.
///
/// The value set is a sorted, deduplicated `Vec` rather than a tree: the
/// fixpoints clone and intersect these sets every round, and at ≤
/// [`VALUE_SET_CAP`] elements a flat copy plus linear merge beats
/// per-node allocation by an order of magnitude.
#[derive(Clone, Debug, PartialEq)]
pub struct ArgDomain {
    /// Abstract type of the constants reaching this position.
    pub ty: AbsType,
    /// Known constants (sorted, deduplicated), or `None` once widened
    /// past [`VALUE_SET_CAP`].
    pub values: Option<Vec<Const>>,
}

impl ArgDomain {
    /// Bottom: nothing reaches this position.
    pub fn bottom() -> Self {
        ArgDomain {
            ty: AbsType::Empty,
            values: Some(Vec::new()),
        }
    }

    /// Top: any constant in the universe.
    pub fn top() -> Self {
        ArgDomain {
            ty: AbsType::Mixed,
            values: None,
        }
    }

    /// Whether this position has been widened to the whole universe.
    pub fn widened(&self) -> bool {
        self.values.is_none()
    }

    /// Adds one constant; returns `true` when the domain grew.
    pub fn add(&mut self, c: &Const) -> bool {
        let ty = self.ty.join(AbsType::of(c));
        let mut changed = ty != self.ty;
        self.ty = ty;
        if let Some(values) = &mut self.values {
            if let Err(pos) = values.binary_search(c) {
                values.insert(pos, *c);
                changed = true;
            }
            if values.len() > VALUE_SET_CAP {
                self.values = None;
            }
        }
        changed
    }

    /// Joins `other` in; returns `true` when the domain grew.
    pub fn join_from(&mut self, other: &ArgDomain) -> bool {
        let ty = self.ty.join(other.ty);
        let mut changed = ty != self.ty;
        self.ty = ty;
        match (&mut self.values, &other.values) {
            (Some(mine), Some(theirs)) => {
                if !theirs.is_empty() {
                    let before = mine.len();
                    let mut merged = Vec::with_capacity(before + theirs.len());
                    let (mut a, mut b) = (mine.iter().peekable(), theirs.iter().peekable());
                    while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
                        match x.cmp(y) {
                            std::cmp::Ordering::Less => merged.push(*a.next().unwrap()),
                            std::cmp::Ordering::Greater => merged.push(*b.next().unwrap()),
                            std::cmp::Ordering::Equal => {
                                merged.push(*a.next().unwrap());
                                b.next();
                            }
                        }
                    }
                    merged.extend(a.cloned());
                    merged.extend(b.cloned());
                    changed |= merged.len() > before;
                    *mine = merged;
                    if mine.len() > VALUE_SET_CAP {
                        self.values = None;
                        changed = true;
                    }
                }
            }
            (Some(_), None) => {
                self.values = None;
                changed = true;
            }
            (None, _) => {}
        }
        changed
    }

    /// Meet with `other` (used when a variable occurs at several body
    /// positions: its bindings must lie in every occurrence's domain).
    pub fn meet(&self, other: &ArgDomain) -> ArgDomain {
        let ty = self.ty.meet(other.ty);
        let values = match (&self.values, &other.values) {
            (Some(a), Some(b)) => {
                // Both sorted: linear intersection.
                let mut out = Vec::with_capacity(a.len().min(b.len()));
                let (mut x, mut y) = (a.iter().peekable(), b.iter().peekable());
                while let (Some(&i), Some(&j)) = (x.peek(), y.peek()) {
                    match i.cmp(j) {
                        std::cmp::Ordering::Less => {
                            x.next();
                        }
                        std::cmp::Ordering::Greater => {
                            y.next();
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(*x.next().unwrap());
                            y.next();
                        }
                    }
                }
                Some(out)
            }
            (Some(a), None) => Some(a.clone()),
            (None, Some(b)) => Some(b.clone()),
            (None, None) => None,
        };
        ArgDomain { ty, values }
    }

    /// Whether the meet is observably empty: each side saw constants,
    /// but no constant can satisfy both occurrences.
    pub fn disjoint_with(&self, other: &ArgDomain) -> bool {
        if self.ty == AbsType::Empty || other.ty == AbsType::Empty {
            return false; // one side is undetermined, not contradictory
        }
        let met = self.meet(other);
        if met.ty == AbsType::Empty {
            return true;
        }
        matches!(&met.values, Some(v) if v.is_empty())
    }

    /// Number of distinct constants this position can take, clamped to
    /// `universe` when widened. Never returns 0 for a non-empty domain.
    pub fn size(&self, universe: u64) -> u64 {
        match &self.values {
            Some(v) => (v.len() as u64).max(if self.ty == AbsType::Empty { 0 } else { 1 }),
            None => universe.max(1),
        }
    }

    /// Compact rendering like `int{4}` or `sym(widened)`.
    pub fn render(&self) -> String {
        match &self.values {
            Some(v) => format!("{}{{{}}}", self.ty.as_str(), v.len()),
            None => format!("{}(widened)", self.ty.as_str()),
        }
    }
}

/// Inferred argument domains for every predicate in a program.
pub struct Domains {
    /// Per-predicate, per-position abstract domains.
    pub args: HashMap<Symbol, Vec<ArgDomain>>,
    /// Distinct constants appearing anywhere in the program (the value a
    /// widened position is assumed to range over).
    pub universe: u64,
}

impl Domains {
    /// Domain of `pred` argument `i`, or top for unknown positions.
    pub fn arg(&self, pred: Symbol, i: usize) -> ArgDomain {
        self.args
            .get(&pred)
            .and_then(|v| v.get(i))
            .cloned()
            .unwrap_or_else(ArgDomain::top)
    }

    /// Distinct-value count of `pred` argument `i` without cloning the
    /// domain (unknown positions range over the whole universe). The cost
    /// fixpoints call this per bound column per round, so it must not
    /// copy the value sets [`arg`](Self::arg) carries.
    pub fn arg_size(&self, pred: Symbol, i: usize) -> u64 {
        match self.args.get(&pred).and_then(|v| v.get(i)) {
            Some(d) => d.size(self.universe),
            None => self.universe.max(1),
        }
    }
}

/// The meet of every body occurrence of each variable in a clause.
///
/// Variables bound only in one place keep that occurrence's domain; a
/// variable never bound by the body (impossible in validated programs)
/// falls back to top.
pub fn var_domains(
    clause: &p3_datalog::ast::Clause,
    domains: &Domains,
) -> HashMap<Symbol, ArgDomain> {
    let mut vars: HashMap<Symbol, ArgDomain> = HashMap::new();
    for atom in clause.body() {
        for (i, term) in atom.args.iter().enumerate() {
            if let Term::Var(v) = term {
                let occ = domains.arg(atom.pred, i);
                vars.entry(*v)
                    .and_modify(|d| *d = d.meet(&occ))
                    .or_insert(occ);
            }
        }
    }
    vars
}

/// Infers argument domains for every predicate by forward fixpoint.
pub fn infer(program: &Program) -> Domains {
    let mut universe: Vec<Const> = Vec::new();
    for (_, clause) in program.iter() {
        let atoms = std::iter::once(&clause.head).chain(clause.body().iter());
        for atom in atoms {
            for term in &atom.args {
                if let Term::Const(c) = term {
                    universe.push(*c);
                }
            }
        }
    }
    universe.sort_unstable();
    universe.dedup();
    let mut domains = Domains {
        args: HashMap::new(),
        universe: (universe.len() as u64).max(1),
    };
    for (_, clause) in program.iter() {
        for atom in std::iter::once(&clause.head)
            .chain(clause.body().iter())
            .chain(clause.negated().iter())
        {
            domains
                .args
                .entry(atom.pred)
                .or_insert_with(|| vec![ArgDomain::bottom(); atom.args.len()]);
        }
    }

    // Facts contribute the same constants every round — seed them once,
    // in bulk (collect-then-sort beats per-element sorted insertion on
    // large EDBs), and keep only rules inside the fixpoint.
    let mut fact_consts: HashMap<Symbol, Vec<Vec<Const>>> = HashMap::new();
    for (_, clause) in program.iter().filter(|(_, c)| c.is_fact()) {
        let cols = fact_consts
            .entry(clause.head.pred)
            .or_insert_with(|| vec![Vec::new(); clause.head.args.len()]);
        for (i, term) in clause.head.args.iter().enumerate() {
            if let (Term::Const(c), Some(col)) = (term, cols.get_mut(i)) {
                col.push(*c);
            }
        }
    }
    for (pred, cols) in fact_consts {
        let entry = domains.args.get_mut(&pred).expect("seeded above");
        for (i, mut col) in cols.into_iter().enumerate() {
            let Some(dom) = entry.get_mut(i) else {
                continue;
            };
            col.sort_unstable();
            col.dedup();
            for c in &col {
                dom.ty = dom.ty.join(AbsType::of(c));
            }
            if col.len() > VALUE_SET_CAP {
                dom.values = None;
            } else if let Some(values) = &mut dom.values {
                *values = col;
            }
        }
    }

    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for (_, clause) in program.iter() {
            if clause.is_fact() {
                continue;
            }
            let vars = var_domains(clause, &domains);
            let head_updates: Vec<(usize, ArgDomain)> = clause
                .head
                .args
                .iter()
                .enumerate()
                .filter_map(|(i, term)| match term {
                    Term::Var(v) => vars.get(v).map(|d| (i, d.clone())),
                    Term::Const(_) => None,
                })
                .collect();
            let entry = domains
                .args
                .get_mut(&clause.head.pred)
                .expect("seeded above");
            for (i, term) in clause.head.args.iter().enumerate() {
                if let (Term::Const(c), Some(dom)) = (term, entry.get_mut(i)) {
                    changed |= dom.add(c);
                }
            }
            for (i, dom) in head_updates {
                if let Some(target) = entry.get_mut(i) {
                    changed |= target.join_from(&dom);
                }
            }
        }
        if !changed {
            break;
        }
    }
    domains
}

/// Renders each position of `pred` for [`crate::plan::PredSummary`].
pub fn render_domains(domains: &Domains, pred: Symbol, _symbols: &SymbolTable) -> Vec<String> {
    domains
        .args
        .get(&pred)
        .map(|v| v.iter().map(ArgDomain::render).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        Program::parse(src).unwrap()
    }

    #[test]
    fn facts_seed_exact_domains() {
        let p = program("0.5::edge(1,2).\n0.5::edge(2,3).\n");
        let d = infer(&p);
        let pred = p.symbols().get("edge").unwrap();
        let args = &d.args[&pred];
        assert_eq!(args[0].ty, AbsType::Int);
        assert_eq!(args[0].size(d.universe), 2);
        assert_eq!(args[1].size(d.universe), 2);
    }

    #[test]
    fn rules_propagate_to_heads() {
        let p = program("0.5::edge(1,2).\npath(X,Y) :- edge(X,Y).\n");
        let d = infer(&p);
        let path = p.symbols().get("path").unwrap();
        assert_eq!(d.args[&path][0].ty, AbsType::Int);
        assert_eq!(d.args[&path][0].size(d.universe), 1);
    }

    #[test]
    fn widening_drops_large_sets() {
        let mut src = String::new();
        for i in 0..(VALUE_SET_CAP + 8) {
            src.push_str(&format!("0.5::big({i}).\n"));
        }
        let p = program(&src);
        let d = infer(&p);
        let big = p.symbols().get("big").unwrap();
        assert!(d.args[&big][0].widened());
        assert_eq!(d.args[&big][0].size(d.universe), d.universe);
    }

    #[test]
    fn disjoint_detection() {
        let p = program("0.5::a(1).\n0.5::b(two).\nboth(X) :- a(X), b(X).\n");
        let d = infer(&p);
        let a = p.symbols().get("a").unwrap();
        let b = p.symbols().get("b").unwrap();
        assert!(d.args[&a][0].disjoint_with(&d.args[&b][0]));
    }

    #[test]
    fn meet_respects_types() {
        assert_eq!(AbsType::Sym.meet(AbsType::Int), AbsType::Empty);
        assert_eq!(AbsType::Mixed.meet(AbsType::Int), AbsType::Int);
        assert_eq!(AbsType::Sym.join(AbsType::Int), AbsType::Mixed);
    }
}
