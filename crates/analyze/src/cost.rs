//! Cardinality and cost propagation.
//!
//! Relations are abstracted to a single `u64` cardinality bound. EDB
//! predicates start at their exact fact count; rule heads accumulate
//! predicted firings, computed by a left-to-right join estimate that
//! divides each atom's cardinality by the distinct counts of its bound
//! columns (the classic System-R selectivity model over the inferred
//! [`crate::domain::ArgDomain`]s).
//!
//! Evaluation order is the topological order of predicate SCCs (strata
//! in this codebase only split on negation, so positive recursion needs
//! its own condensation). A recursive SCC is iterated to a local
//! fixpoint; if cardinalities are still growing after
//! [`WIDEN_AFTER`] rounds, every predicate in the SCC is widened to its
//! Cartesian bound (the product of its argument-domain sizes) and the
//! iteration stops — mirroring how the engine's semi-naive fixpoint is
//! bounded by the finite Herbrand base.

use crate::domain::{var_domains, ArgDomain, Domains};
use crate::plan::PredictedRuleCost;
use p3_datalog::ast::{Clause, ClauseId, CmpOp, Term};
use p3_datalog::diag::Diagnostic;
use p3_datalog::program::Program;
use p3_datalog::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// Every cardinality, candidate and cost figure saturates here (~10^12):
/// beyond this the prediction is "too big to run", and unbounded growth
/// would make rank comparisons meaningless anyway.
pub const COST_CAP: u64 = 1 << 40;

/// In-SCC fixpoint rounds before widening to the Cartesian bound.
pub const WIDEN_AFTER: usize = 3;

/// Cap on the predicted semi-naive iteration count of a recursive SCC.
pub const ITER_CAP: u64 = 64;

/// Predicted-DNF-width saturation point (monomials per derived tuple).
pub const WIDTH_CAP: u64 = 1 << 20;

/// Widths at or above this trigger the `P3701` wide-DNF warning.
pub const WIDE_DNF_THRESHOLD: u64 = 256;

/// A body reordering must predict at least this improvement factor
/// before `P3702` suggests it.
const REORDER_GAIN: u64 = 2;

fn cap(v: u64) -> u64 {
    v.min(COST_CAP)
}

fn mul(a: u64, b: u64) -> u64 {
    cap(a.saturating_mul(b))
}

fn add(a: u64, b: u64) -> u64 {
    cap(a.saturating_add(b))
}

/// Predicate SCCs in topological (dependency-first) order.
///
/// `recursive[i]` is true when SCC `i` contains a cycle (self-loop or
/// mutual recursion).
pub struct Condensation {
    /// SCC index of each rule-defined or referenced predicate.
    pub scc_of: HashMap<Symbol, usize>,
    /// SCC members, in topological order (dependencies first).
    pub sccs: Vec<Vec<Symbol>>,
    /// Whether the SCC at the same index contains a cycle.
    pub recursive: Vec<bool>,
}

impl Condensation {
    /// Whether `pred` participates in any recursive cycle.
    pub fn is_recursive(&self, pred: Symbol) -> bool {
        self.scc_of
            .get(&pred)
            .map(|&i| self.recursive[i])
            .unwrap_or(false)
    }
}

/// Head → body-predicate condensation via iterative Tarjan.
pub fn condense(program: &Program) -> Condensation {
    let mut nodes: Vec<Symbol> = Vec::new();
    let mut seen: HashSet<Symbol> = HashSet::new();
    let mut edges: HashMap<Symbol, Vec<Symbol>> = HashMap::new();
    for (_, clause) in program.iter() {
        for atom in std::iter::once(&clause.head)
            .chain(clause.body().iter())
            .chain(clause.negated().iter())
        {
            if seen.insert(atom.pred) {
                nodes.push(atom.pred);
            }
        }
        if clause.is_rule() {
            let entry = edges.entry(clause.head.pred).or_default();
            for atom in clause.body().iter().chain(clause.negated().iter()) {
                entry.push(atom.pred);
            }
        }
    }

    // Iterative Tarjan: explicit stack of (node, next-edge-index) frames.
    let mut index: HashMap<Symbol, usize> = HashMap::new();
    let mut lowlink: HashMap<Symbol, usize> = HashMap::new();
    let mut on_stack: HashSet<Symbol> = HashSet::new();
    let mut stack: Vec<Symbol> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<Symbol>> = Vec::new();
    let empty: Vec<Symbol> = Vec::new();

    for &root in &nodes {
        if index.contains_key(&root) {
            continue;
        }
        let mut frames: Vec<(Symbol, usize)> = vec![(root, 0)];
        index.insert(root, next_index);
        lowlink.insert(root, next_index);
        next_index += 1;
        stack.push(root);
        on_stack.insert(root);
        while let Some(&mut (node, ref mut edge_i)) = frames.last_mut() {
            let succs = edges.get(&node).unwrap_or(&empty);
            if *edge_i < succs.len() {
                let next = succs[*edge_i];
                *edge_i += 1;
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(next) {
                    e.insert(next_index);
                    lowlink.insert(next, next_index);
                    next_index += 1;
                    stack.push(next);
                    on_stack.insert(next);
                    frames.push((next, 0));
                } else if on_stack.contains(&next) {
                    let low = lowlink[&node].min(index[&next]);
                    lowlink.insert(node, low);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let low = lowlink[&parent].min(lowlink[&node]);
                    lowlink.insert(parent, low);
                }
                if lowlink[&node] == index[&node] {
                    let mut scc = Vec::new();
                    while let Some(top) = stack.pop() {
                        on_stack.remove(&top);
                        scc.push(top);
                        if top == node {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }

    // Tarjan completes an SCC only after everything it points to (its
    // body dependencies) is complete, so the emission order is already
    // dependencies-first — exactly the bottom-up evaluation order.
    let mut scc_of = HashMap::new();
    for (i, scc) in sccs.iter().enumerate() {
        for &p in scc {
            scc_of.insert(p, i);
        }
    }
    let recursive = sccs
        .iter()
        .enumerate()
        .map(|(i, scc)| {
            scc.len() > 1
                || scc.iter().any(|&p| {
                    edges
                        .get(&p)
                        .map(|succ| succ.iter().any(|&q| scc_of.get(&q) == Some(&i)))
                        .unwrap_or(false)
                })
        })
        .collect();
    Condensation {
        scc_of,
        sccs,
        recursive,
    }
}

/// The full static cost model for one program.
pub struct CostModel {
    /// Predicted cardinality bound per predicate.
    pub card: HashMap<Symbol, u64>,
    /// Predicates whose cardinality was widened to the Cartesian bound.
    pub widened: HashSet<Symbol>,
    /// Predicted DNF width (monomials per derived tuple) per predicate.
    pub dnf_width: HashMap<Symbol, u64>,
    /// Number of distinct rules deriving each predicate (proof fan-in).
    pub fan_in: HashMap<Symbol, u64>,
    /// Per-rule predicted costs, unsorted (the plan sorts them).
    pub rules: Vec<PredictedRuleCost>,
    /// Predicted semi-naive iterations per recursive predicate.
    pub iterations: HashMap<Symbol, u64>,
    /// `P37xx` diagnostics raised while estimating.
    pub diagnostics: Vec<Diagnostic>,
    /// The SCC condensation (reused by the mode recommendation).
    pub condensation: Condensation,
}

impl CostModel {
    /// Total predicted cost across all rules.
    pub fn total_cost(&self) -> u64 {
        self.rules.iter().fold(0, |acc, r| add(acc, r.cost()))
    }
}

/// Cartesian bound of an atom: the product of its argument-domain sizes.
fn cartesian_bound(pred: Symbol, arity: usize, domains: &Domains) -> u64 {
    (0..arity).fold(1u64, |acc, i| mul(acc, domains.arg_size(pred, i)))
}

/// Distinct values of column `i` of `pred`, clamped into `[1, card]`.
fn distinct(pred: Symbol, i: usize, card: u64, domains: &Domains) -> u64 {
    domains.arg_size(pred, i).clamp(1, card.max(1))
}

/// Left-to-right join estimate over `order` (indices into the body).
///
/// Returns `(firings, candidates)`: the predicted result rows and the
/// total join candidates scanned. Each atom contributes
/// `card / Π distinct(bound column)` matches per in-flight row.
fn join_estimate(
    clause: &Clause,
    order: &[usize],
    card: &HashMap<Symbol, u64>,
    domains: &Domains,
) -> (u64, u64) {
    let body = clause.body();
    let mut rows = 1u64;
    let mut candidates = 0u64;
    let mut bound: HashSet<Symbol> = HashSet::new();
    for &bi in order {
        let atom = &body[bi];
        let n = card.get(&atom.pred).copied().unwrap_or(0);
        if n == 0 {
            return (0, candidates);
        }
        let mut div = 1u64;
        for (i, term) in atom.args.iter().enumerate() {
            let selective = match term {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            };
            if selective {
                div = mul(div, distinct(atom.pred, i, n, domains));
            }
        }
        let matches = (n / div.max(1)).max(1);
        candidates = add(candidates, mul(rows, matches));
        rows = mul(rows, matches);
        for term in &atom.args {
            if let Term::Var(v) = term {
                bound.insert(*v);
            }
        }
    }
    (rows, candidates)
}

/// Greedy body reordering: repeatedly pick the atom with the fewest
/// predicted matches given the variables already bound.
fn greedy_order(clause: &Clause, card: &HashMap<Symbol, u64>, domains: &Domains) -> Vec<usize> {
    let body = clause.body();
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    let mut order = Vec::with_capacity(body.len());
    let mut bound: HashSet<Symbol> = HashSet::new();
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &bi)| {
                let atom = &body[bi];
                let n = card.get(&atom.pred).copied().unwrap_or(0);
                if n == 0 {
                    return 0;
                }
                let mut div = 1u64;
                for (i, term) in atom.args.iter().enumerate() {
                    let selective = match term {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    };
                    if selective {
                        div = mul(div, distinct(atom.pred, i, n, domains));
                    }
                }
                (n / div.max(1)).max(1)
            })
            .expect("remaining is non-empty");
        remaining.remove(pos);
        order.push(best);
        for term in &body[best].args {
            if let Term::Var(v) = term {
                bound.insert(*v);
            }
        }
    }
    order
}

/// Runs the whole cost analysis: cardinalities, per-rule costs, DNF
/// widths and the `P37xx` prediction diagnostics.
pub fn estimate(program: &Program, domains: &Domains) -> CostModel {
    let condensation = condense(program);
    let mut card: HashMap<Symbol, u64> = HashMap::new();
    let mut widened: HashSet<Symbol> = HashSet::new();
    let mut fan_in: HashMap<Symbol, u64> = HashMap::new();

    // EDB layer: exact fact counts.
    for (_, clause) in program.iter() {
        if clause.is_fact() {
            *card.entry(clause.head.pred).or_insert(0) += 1;
        } else {
            *fan_in.entry(clause.head.pred).or_insert(0) += 1;
        }
    }

    // Rules grouped by head SCC, processed dependencies-first.
    let mut rules_of_scc: Vec<Vec<(ClauseId, &Clause)>> = vec![Vec::new(); condensation.sccs.len()];
    for (id, clause) in program.iter() {
        if clause.is_rule() {
            if let Some(&scc) = condensation.scc_of.get(&clause.head.pred) {
                rules_of_scc[scc].push((id, clause));
            }
        }
    }

    let mut iterations: HashMap<Symbol, u64> = HashMap::new();
    for (scc_i, rules) in rules_of_scc.iter().enumerate() {
        if rules.is_empty() {
            continue;
        }
        let recursive = condensation.recursive[scc_i];
        let mut rounds = 0usize;
        loop {
            let mut changed = false;
            let mut derived: HashMap<Symbol, u64> = HashMap::new();
            for &(_, clause) in rules {
                let order: Vec<usize> = (0..clause.body().len()).collect();
                let (firings, _) = join_estimate(clause, &order, &card, domains);
                let head_bound = cartesian_bound(clause.head.pred, clause.head.args.len(), domains);
                let tuples = firings.min(head_bound);
                let entry = derived.entry(clause.head.pred).or_insert(0);
                *entry = add(*entry, tuples);
            }
            for (&pred, &tuples) in &derived {
                let head_bound = cartesian_bound(pred, program.arity(pred).unwrap_or(0), domains);
                let entry = card.entry(pred).or_insert(0);
                let next = entry.saturating_add(tuples).min(head_bound).min(COST_CAP);
                if next > *entry {
                    *entry = next;
                    changed = true;
                }
            }
            rounds += 1;
            if !changed || !recursive {
                break;
            }
            if rounds >= WIDEN_AFTER {
                // Still growing: widen every head in the SCC to its
                // Cartesian bound and stop iterating.
                for &(_, clause) in rules {
                    let pred = clause.head.pred;
                    let bound = cartesian_bound(pred, clause.head.args.len(), domains);
                    let entry = card.entry(pred).or_insert(0);
                    if bound > *entry {
                        *entry = bound;
                        widened.insert(pred);
                    }
                }
                break;
            }
        }
        if recursive {
            // Fixpoint depth ≈ the longest chain a recursive argument can
            // take, bounded by the widest argument domain in the SCC.
            let depth = condensation.sccs[scc_i]
                .iter()
                .map(|&p| {
                    (0..program.arity(p).unwrap_or(0))
                        .map(|i| domains.arg_size(p, i))
                        .max()
                        .unwrap_or(1)
                })
                .max()
                .unwrap_or(1)
                .clamp(2, ITER_CAP);
            for &p in &condensation.sccs[scc_i] {
                iterations.insert(p, depth);
            }
        }
    }

    // Final per-rule pass with the settled cardinalities.
    let mut rules_out: Vec<PredictedRuleCost> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let symbols = program.symbols();
    for (id, clause) in program.iter() {
        if !clause.is_rule() {
            continue;
        }
        let head_pred = clause.head.pred;
        let source_order: Vec<usize> = (0..clause.body().len()).collect();
        let (mut firings, mut candidates) = join_estimate(clause, &source_order, &card, domains);
        // Semi-naive only re-runs a rule when its body reads a delta
        // relation from the head's own SCC; a rule that joins nothing
        // but lower strata fires in round one and never again.
        let head_scc = condensation.scc_of.get(&head_pred);
        let in_fixpoint_loop = condensation.is_recursive(head_pred)
            && clause
                .body()
                .iter()
                .any(|a| condensation.scc_of.get(&a.pred) == head_scc);
        let iters = if in_fixpoint_loop {
            iterations.get(&head_pred).copied().unwrap_or(2)
        } else {
            1
        };
        firings = mul(firings, iters);
        candidates = mul(candidates, iters);
        let head_bound = cartesian_bound(head_pred, clause.head.args.len(), domains);
        let new_tuples = firings.min(head_bound);
        rules_out.push(PredictedRuleCost {
            clause: Some(id),
            label: clause.label.clone(),
            head: symbols.resolve(head_pred).to_string(),
            recursive: in_fixpoint_loop,
            firings,
            new_tuples,
            candidates,
            iterations: iters,
        });

        // P3702: join-order hint.
        if clause.body().len() >= 2 {
            let best_order = greedy_order(clause, &card, domains);
            if best_order != source_order {
                let (_, best_candidates) = join_estimate(clause, &best_order, &card, domains);
                if best_candidates > 0
                    && candidates / iters.max(1) >= best_candidates.saturating_mul(REORDER_GAIN)
                {
                    let suggested: Vec<String> = best_order
                        .iter()
                        .map(|&bi| symbols.resolve(clause.body()[bi].pred).to_string())
                        .collect();
                    diagnostics.push(
                        Diagnostic::info(
                            "P3702",
                            format!(
                                "rule '{}' joins its body in a suboptimal order: predicted {} \
                                 join candidates as written vs {} with order {}",
                                clause.label,
                                candidates / iters.max(1),
                                best_candidates,
                                suggested.join(", "),
                            ),
                        )
                        .with_span(program.clause_spans(id).map(|s| s.clause))
                        .with_clause(clause.label.clone())
                        .with_help(
                            "place the most selective atoms first so earlier bindings restrict \
                             each probe; the engine joins body atoms left to right",
                        ),
                    );
                }
            }
        }

        // P3703: domain mismatches that make the rule unsatisfiable or
        // compare symbols by order.
        diagnostics.extend(domain_mismatches(program, id, clause, domains));
    }

    // DNF widths: dependencies-first, recursive SCCs saturate.
    let mut dnf_width: HashMap<Symbol, u64> = HashMap::new();
    let mut fact_preds: HashSet<Symbol> = HashSet::new();
    for (_, clause) in program.iter() {
        if clause.is_fact() {
            dnf_width.entry(clause.head.pred).or_insert(1);
            fact_preds.insert(clause.head.pred);
        }
    }
    for (scc_i, rules) in rules_of_scc.iter().enumerate() {
        if rules.is_empty() {
            continue;
        }
        let recursive = condensation.recursive[scc_i];
        let mut rounds = 0usize;
        loop {
            let mut changed = false;
            for &(_, clause) in rules {
                let head = clause.head.pred;
                let body_width = clause.body().iter().fold(1u64, |acc, atom| {
                    mul(acc, dnf_width.get(&atom.pred).copied().unwrap_or(1))
                });
                // Alternative derivations of the same head tuple stack as
                // extra monomials: rules add, joins multiply.
                let base = u64::from(fact_preds.contains(&head));
                let total = rules
                    .iter()
                    .filter(|&&(_, c)| c.head.pred == head)
                    .fold(base, |acc, &(_, c)| {
                        let w = c.body().iter().fold(1u64, |a, atom| {
                            mul(a, dnf_width.get(&atom.pred).copied().unwrap_or(1))
                        });
                        add(acc, w)
                    })
                    .min(WIDTH_CAP)
                    .max(body_width.min(WIDTH_CAP));
                let entry = dnf_width.entry(head).or_insert(0);
                if total > *entry {
                    *entry = total;
                    changed = true;
                }
            }
            rounds += 1;
            if !changed {
                break;
            }
            if recursive && rounds >= WIDEN_AFTER {
                for &(_, clause) in rules {
                    dnf_width.insert(clause.head.pred, WIDTH_CAP);
                }
                break;
            }
        }
    }

    // P3701: wide-DNF warning per IDB predicate.
    let mut warned: HashSet<Symbol> = HashSet::new();
    for (id, clause) in program.iter() {
        if !clause.is_rule() || !warned.insert(clause.head.pred) {
            continue;
        }
        let pred = clause.head.pred;
        let width = dnf_width.get(&pred).copied().unwrap_or(1);
        if width >= WIDE_DNF_THRESHOLD {
            let shown = if width >= WIDTH_CAP {
                format!("{WIDTH_CAP}+ (saturated)")
            } else {
                width.to_string()
            };
            diagnostics.push(
                Diagnostic::warn(
                    "P3701",
                    format!(
                        "predicted provenance width for '{}' is {} monomials per tuple \
                         (proof fan-in {} rules)",
                        symbols.resolve(pred),
                        shown,
                        fan_in.get(&pred).copied().unwrap_or(0),
                    ),
                )
                .with_span(program.clause_spans(id).map(|s| s.clause))
                .with_clause(clause.label.clone())
                .with_help(
                    "wide DNFs make exact probability computation expensive; consider a hop \
                     limit (--hop-limit) or Monte-Carlo estimation for queries over this \
                     predicate",
                ),
            );
        }
    }

    CostModel {
        card,
        widened,
        dnf_width,
        fan_in,
        rules: rules_out,
        iterations,
        diagnostics,
        condensation,
    }
}

/// `P3703` detection for one rule: join variables whose occurrence
/// domains cannot intersect, and order comparisons over symbol-only
/// positions (symbols only support a meaningful `=` / `!=`).
fn domain_mismatches(
    program: &Program,
    id: ClauseId,
    clause: &Clause,
    domains: &Domains,
) -> Vec<Diagnostic> {
    use crate::domain::AbsType;
    let symbols = program.symbols();
    let mut out = Vec::new();
    let span = program.clause_spans(id).map(|s| s.clause);

    // Per-variable occurrence list over the body.
    let mut occurrences: HashMap<Symbol, Vec<(Symbol, usize)>> = HashMap::new();
    for atom in clause.body() {
        for (i, term) in atom.args.iter().enumerate() {
            if let Term::Var(v) = term {
                occurrences.entry(*v).or_default().push((atom.pred, i));
            }
        }
    }
    let mut flagged: HashSet<Symbol> = HashSet::new();
    for (&var, occs) in &occurrences {
        if occs.len() < 2 {
            continue;
        }
        for w in occs.windows(2) {
            let a = domains.arg(w[0].0, w[0].1);
            let b = domains.arg(w[1].0, w[1].1);
            if a.disjoint_with(&b) && flagged.insert(var) {
                out.push(
                    Diagnostic::warn(
                        "P3703",
                        format!(
                            "rule '{}' can never fire: variable {} joins {}[{}] ({}) with \
                             {}[{}] ({}) but the domains share no constant",
                            clause.label,
                            symbols.resolve(var),
                            symbols.resolve(w[0].0),
                            w[0].1,
                            a.render(),
                            symbols.resolve(w[1].0),
                            w[1].1,
                            b.render(),
                        ),
                    )
                    .with_span(span)
                    .with_clause(clause.label.clone())
                    .with_help(
                        "the inferred argument domains are disjoint, so the join is empty in \
                         every world; check for a typo'd predicate or a sym/int mismatch",
                    ),
                );
                break;
            }
        }
    }

    // Ordering constraints over symbol-only variables.
    let vars = var_domains(clause, domains);
    for constraint in clause.constraints() {
        if matches!(constraint.op, CmpOp::Eq | CmpOp::Ne) {
            continue;
        }
        let sym_only = |t: &Term| -> bool {
            match t {
                Term::Var(v) => vars.get(v).map(|d| d.ty == AbsType::Sym).unwrap_or(false),
                Term::Const(c) => AbsType::of(c) == AbsType::Sym,
            }
        };
        if sym_only(&constraint.lhs) || sym_only(&constraint.rhs) {
            out.push(
                Diagnostic::warn(
                    "P3703",
                    format!(
                        "rule '{}' orders symbol-typed terms with '{}': symbols compare by \
                         interning order, which is source order, not a meaningful value order",
                        clause.label,
                        constraint.op.token(),
                    ),
                )
                .with_span(span)
                .with_clause(clause.label.clone())
                .with_help(
                    "only = and != are meaningful on symbols; use integer arguments if the \
                     comparison is intentional",
                ),
            );
        }
    }
    out
}

/// Helper shared by the plan and mode recommendation: an [`ArgDomain`]
/// rendered against the universe size (re-exported for tests).
pub fn domain_size(domain: &ArgDomain, universe: u64) -> u64 {
    domain.size(universe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::infer;

    fn model(src: &str) -> (Program, CostModel) {
        let p = Program::parse(src).unwrap();
        let d = infer(&p);
        let m = estimate(&p, &d);
        (p, m)
    }

    #[test]
    fn flat_rule_costs_match_join_shape() {
        let (p, m) = model(
            "t1 0.5: edge(1,2).\nt2 0.5: edge(2,3).\n\
             r1 1.0: path(X,Y) :- edge(X,Y).\n",
        );
        let path = p.symbols().get("path").unwrap();
        assert_eq!(m.card[&path], 2);
        let r1 = m.rules.iter().find(|r| r.label == "r1").unwrap();
        assert!(!r1.recursive);
        assert_eq!(r1.iterations, 1);
        assert_eq!(r1.firings, 2);
    }

    #[test]
    fn recursive_scc_is_widened_and_iterated() {
        let (p, m) = model(
            "t1 0.5: edge(1,2).\nt2 0.5: edge(2,3).\nt3 0.5: edge(3,4).\n\
             r1 1.0: path(X,Y) :- edge(X,Y).\n\
             r2 1.0: path(X,Z) :- edge(X,Y), path(Y,Z).\n",
        );
        let path = p.symbols().get("path").unwrap();
        assert!(m.condensation.is_recursive(path));
        let r2 = m.rules.iter().find(|r| r.label == "r2").unwrap();
        assert!(r2.recursive);
        assert!(r2.iterations >= 2);
        let r1 = m.rules.iter().find(|r| r.label == "r1").unwrap();
        assert!(r2.cost() > r1.cost(), "recursive rule must dominate");
    }

    #[test]
    fn mutual_recursion_detected() {
        let (p, m) = model(
            "t1 0.5: seed(1).\n\
             r1 1.0: a(X) :- seed(X).\n\
             r2 1.0: a(X) :- b(X).\n\
             r3 1.0: b(X) :- a(X).\n",
        );
        let a = p.symbols().get("a").unwrap();
        let b = p.symbols().get("b").unwrap();
        assert!(m.condensation.is_recursive(a));
        assert!(m.condensation.is_recursive(b));
        assert_eq!(m.condensation.scc_of[&a], m.condensation.scc_of[&b]);
    }

    #[test]
    fn disjoint_join_raises_p3703() {
        let (_, m) = model("t1 0.5: a(1).\nt2 0.5: b(two).\nr1 1.0: both(X) :- a(X), b(X).\n");
        assert!(m.diagnostics.iter().any(|d| d.code == "P3703"));
    }

    #[test]
    fn symbol_ordering_raises_p3703() {
        let (_, m) = model(
            "t1 0.5: person(alice).\nt2 0.5: person(bob).\n\
             r1 1.0: pair(X,Y) :- person(X), person(Y), X < Y.\n",
        );
        assert!(m
            .diagnostics
            .iter()
            .any(|d| d.code == "P3703" && d.message.contains("interning order")));
    }

    #[test]
    fn bad_join_order_raises_p3702() {
        // `huge` joined first scans everything; greedy would start at the
        // constant-bound `tiny` atom.
        let mut src = String::new();
        for i in 0..40 {
            for j in 0..40 {
                src.push_str(&format!("huge({i},{j}).\n"));
            }
        }
        src.push_str("tiny(1).\n");
        src.push_str("r1 1.0: out(X,Y) :- huge(X,Y), tiny(X).\n");
        let (_, m) = model(&src);
        assert!(m.diagnostics.iter().any(|d| d.code == "P3702"));
    }

    #[test]
    fn costs_saturate_at_cap() {
        // Self-join chain over a widened relation stays below COST_CAP.
        let mut src = String::new();
        for i in 0..100 {
            src.push_str(&format!("e({i},{}).\n", i + 1));
        }
        src.push_str("r1 1.0: p(A,E) :- e(A,B), e(B,C), e(C,D), e(D,E).\n");
        src.push_str("r2 1.0: p(A,C) :- p(A,B), p(B,C).\n");
        let (_, m) = model(&src);
        for r in &m.rules {
            assert!(r.cost() <= 3 * COST_CAP);
        }
    }
}
