//! The [`AnalyzePlan`]: ranked predicted rule costs, per-predicate
//! summaries and the optional per-query prediction.
//!
//! The shape deliberately mirrors the EXPLAIN plane's `RuleCost`
//! (`cost() = candidates + firings + new_tuples`, rules sorted by
//! descending cost then label) so the two tables line up row-for-row in
//! `p3 analyze --calibrate` and the rank correlation is meaningful.

use p3_datalog::ast::ClauseId;
use p3_datalog::diag::Diagnostic;
use std::fmt::Write as _;

/// Statically predicted cost of one rule; mirrors `RuleCost`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredictedRuleCost {
    /// The rule's clause id, when known.
    pub clause: Option<ClauseId>,
    /// The rule's label (`r2`, ...).
    pub label: String,
    /// Head predicate name.
    pub head: String,
    /// Whether the rule participates in a recursive SCC.
    pub recursive: bool,
    /// Predicted rule firings across the whole fixpoint.
    pub firings: u64,
    /// Predicted distinct tuples the rule contributes.
    pub new_tuples: u64,
    /// Predicted join candidates scanned.
    pub candidates: u64,
    /// Predicted semi-naive iterations the rule runs under.
    pub iterations: u64,
}

impl PredictedRuleCost {
    /// Scalar cost, same formula as the EXPLAIN plane's `RuleCost::cost`.
    pub fn cost(&self) -> u64 {
        self.candidates
            .saturating_add(self.firings)
            .saturating_add(self.new_tuples)
    }
}

/// Per-predicate analysis summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredSummary {
    /// Predicate name.
    pub name: String,
    /// Arity.
    pub arity: usize,
    /// Whether the predicate is EDB (facts only).
    pub edb: bool,
    /// Predicted cardinality bound.
    pub cardinality: u64,
    /// Whether the bound was widened to the Cartesian bound.
    pub widened: bool,
    /// Predicted DNF width (monomials per derived tuple).
    pub dnf_width: u64,
    /// Number of rules deriving the predicate.
    pub fan_in: u64,
    /// Rendered argument domains, one per position.
    pub domains: Vec<String>,
}

/// Predicted cost of each provenance query class for one predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPrediction {
    /// The query text this prediction is for.
    pub query: String,
    /// The queried predicate.
    pub pred: String,
    /// Predicted cardinality of the queried relation.
    pub cardinality: u64,
    /// Predicted DNF width of one derived tuple.
    pub dnf_width: u64,
    /// Proof fan-in (rules deriving the predicate).
    pub proof_fanin: u64,
    /// Per-query-class predicted work units `(class, cost)`.
    pub classes: Vec<(&'static str, u64)>,
}

/// The full static analysis result for one program.
#[derive(Clone, Debug)]
pub struct AnalyzePlan {
    /// Rules ranked by descending predicted cost, ties by label.
    pub rules: Vec<PredictedRuleCost>,
    /// Per-predicate summaries, sorted by name.
    pub preds: Vec<PredSummary>,
    /// `P37xx` prediction diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether query-directed (demand) evaluation is recommended.
    pub recommend_demand: bool,
    /// Human-readable reason for the recommendation.
    pub reason: String,
    /// Prediction for one specific query, when one was supplied.
    pub query: Option<QueryPrediction>,
    /// Wall time the analysis itself took, in microseconds.
    pub analysis_us: u64,
}

impl AnalyzePlan {
    /// Total predicted cost across all rules.
    pub fn total_cost(&self) -> u64 {
        self.rules
            .iter()
            .fold(0u64, |acc, r| acc.saturating_add(r.cost()))
    }

    /// The predicted most-expensive rule, if any rules exist.
    pub fn top_rule(&self) -> Option<&PredictedRuleCost> {
        self.rules.first()
    }

    /// Sorts rules by descending cost, ties broken by label — the same
    /// order `ExplainPlan` uses.
    pub fn sort_rules(&mut self) {
        self.rules
            .sort_by(|a, b| b.cost().cmp(&a.cost()).then_with(|| a.label.cmp(&b.label)));
    }

    /// Plain-text rendering in the EXPLAIN table layout.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "analyze: {} rules, {} predicates, predicted total cost {} [{} recommended]",
            self.rules.len(),
            self.preds.len(),
            self.total_cost(),
            if self.recommend_demand {
                "demand"
            } else {
                "naive"
            },
        );
        let _ = writeln!(out, "  reason: {}", self.reason);
        let _ = writeln!(
            out,
            "  rank  cost     firings  tuples   candidates  iters  rule"
        );
        for (i, r) in self.rules.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>4}  {:<7}  {:<7}  {:<7}  {:<10}  {:<5}  {} [{}{}]",
                i + 1,
                r.cost(),
                r.firings,
                r.new_tuples,
                r.candidates,
                r.iterations,
                r.label,
                r.head,
                if r.recursive { ", recursive" } else { "" },
            );
        }
        let _ = writeln!(
            out,
            "  pred                  card     width    fan-in  domains"
        );
        for p in &self.preds {
            let _ = writeln!(
                out,
                "  {:<20}  {:<7}  {:<7}  {:<6}  {}{}",
                format!("{}/{}", p.name, p.arity),
                p.cardinality,
                p.dnf_width,
                p.fan_in,
                p.domains.join(", "),
                if p.widened { " (widened)" } else { "" },
            );
        }
        if let Some(q) = &self.query {
            let _ = writeln!(
                out,
                "  query {} -> pred {} card {} width {} fan-in {}",
                q.query, q.pred, q.cardinality, q.dnf_width, q.proof_fanin
            );
            for (class, cost) in &q.classes {
                let _ = writeln!(out, "    {class:<13} predicted work {cost}");
            }
        }
        for diag in &self.diagnostics {
            let _ = writeln!(
                out,
                "  {}: {} [{}]",
                diag.severity.as_str(),
                diag.message,
                diag.code
            );
        }
        out
    }

    /// Machine-readable JSON (hand-rolled like the rest of the suite).
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"total_cost\":{},\"recommend\":\"{}\",\"reason\":\"{}\",\"analysis_us\":{}",
            self.total_cost(),
            if self.recommend_demand {
                "demand"
            } else {
                "naive"
            },
            json_escape(&self.reason),
            self.analysis_us,
        );
        out.push_str(",\"rules\":[");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rank\":{},\"label\":\"{}\",\"head\":\"{}\",\"recursive\":{},\
                 \"cost\":{},\"firings\":{},\"new_tuples\":{},\"candidates\":{},\
                 \"iterations\":{}}}",
                i + 1,
                json_escape(&r.label),
                json_escape(&r.head),
                r.recursive,
                r.cost(),
                r.firings,
                r.new_tuples,
                r.candidates,
                r.iterations,
            );
        }
        out.push_str("],\"preds\":[");
        for (i, p) in self.preds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"arity\":{},\"edb\":{},\"cardinality\":{},\
                 \"widened\":{},\"dnf_width\":{},\"fan_in\":{},\"domains\":[",
                json_escape(&p.name),
                p.arity,
                p.edb,
                p.cardinality,
                p.widened,
                p.dnf_width,
                p.fan_in,
            );
            for (j, d) in p.domains.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", json_escape(d));
            }
            out.push_str("]}");
        }
        out.push(']');
        if let Some(q) = &self.query {
            let _ = write!(
                out,
                ",\"query\":{{\"query\":\"{}\",\"pred\":\"{}\",\"cardinality\":{},\
                 \"dnf_width\":{},\"proof_fanin\":{},\"classes\":{{",
                json_escape(&q.query),
                json_escape(&q.pred),
                q.cardinality,
                q.dnf_width,
                q.proof_fanin,
            );
            for (i, (class, cost)) in q.classes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{class}\":{cost}");
            }
            out.push_str("}}");
        }
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Spearman rank correlation between two cost assignments over the same
/// label set.
///
/// Only labels present on both sides participate; ranks are assigned by
/// descending cost with ties receiving their average rank. Degenerate
/// inputs (fewer than two shared labels, or all ties on either side)
/// return `1.0` when the shared top label agrees and `0.0` otherwise.
pub fn rank_correlation(predicted: &[(String, u64)], measured: &[(String, u64)]) -> f64 {
    let measured_of: std::collections::HashMap<&str, u64> = measured
        .iter()
        .map(|(label, cost)| (label.as_str(), *cost))
        .collect();
    let shared: Vec<(&str, u64, u64)> = predicted
        .iter()
        .filter_map(|(label, p)| {
            measured_of
                .get(label.as_str())
                .map(|&m| (label.as_str(), *p, m))
        })
        .collect();
    let n = shared.len();
    if n < 2 {
        return if n == 1 { 1.0 } else { 0.0 };
    }
    let ranks = |key: fn(&(&str, u64, u64)) -> u64, items: &[(&str, u64, u64)]| -> Vec<f64> {
        // Average ranks for ties, 1 = most expensive.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| key(&items[b]).cmp(&key(&items[a])));
        let mut out = vec![0.0; items.len()];
        let mut i = 0;
        while i < order.len() {
            let mut j = i;
            while j + 1 < order.len() && key(&items[order[j + 1]]) == key(&items[order[i]]) {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0 + 1.0;
            for &idx in &order[i..=j] {
                out[idx] = avg;
            }
            i = j + 1;
        }
        out
    };
    let pr = ranks(|t| t.1, &shared);
    let mr = ranks(|t| t.2, &shared);
    let all_tied = |r: &[f64]| r.windows(2).all(|w| (w[0] - w[1]).abs() < f64::EPSILON);
    if all_tied(&pr) || all_tied(&mr) {
        // No rank information on one side; fall back to top-label match.
        let top = |key: fn(&(&str, u64, u64)) -> u64| {
            shared
                .iter()
                .max_by(|a, b| key(a).cmp(&key(b)).then_with(|| b.0.cmp(a.0)))
                .map(|t| t.0)
        };
        return if top(|t| t.1) == top(|t| t.2) {
            1.0
        } else {
            0.0
        };
    }
    let d2: f64 = pr.iter().zip(&mr).map(|(a, b)| (a - b) * (a - b)).sum();
    let nf = n as f64;
    1.0 - 6.0 * d2 / (nf * (nf * nf - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(l, c)| (l.to_string(), *c)).collect()
    }

    #[test]
    fn perfect_agreement_is_one() {
        let p = costs(&[("r1", 10), ("r2", 100), ("r3", 50)]);
        let m = costs(&[("r1", 7), ("r2", 900), ("r3", 80)]);
        assert!((rank_correlation(&p, &m) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_reversal_is_minus_one() {
        let p = costs(&[("a", 3), ("b", 2), ("c", 1)]);
        let m = costs(&[("a", 1), ("b", 2), ("c", 3)]);
        assert!((rank_correlation(&p, &m) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_labels_are_zero() {
        let p = costs(&[("a", 1)]);
        let m = costs(&[("b", 1)]);
        assert_eq!(rank_correlation(&p, &m), 0.0);
    }

    #[test]
    fn ties_fall_back_to_top_label() {
        let p = costs(&[("a", 5), ("b", 5)]);
        let m = costs(&[("a", 9), ("b", 1)]);
        // Predicted side has no rank info; top-by-tiebreak is "a" on both.
        assert_eq!(rank_correlation(&p, &m), 1.0);
    }

    #[test]
    fn plan_sorts_like_explain() {
        let rule = |label: &str, c: u64| PredictedRuleCost {
            clause: None,
            label: label.to_string(),
            head: "p".into(),
            recursive: false,
            firings: 0,
            new_tuples: 0,
            candidates: c,
            iterations: 1,
        };
        let mut plan = AnalyzePlan {
            rules: vec![rule("r1", 5), rule("r3", 9), rule("r2", 9)],
            preds: Vec::new(),
            diagnostics: Vec::new(),
            recommend_demand: false,
            reason: String::new(),
            query: None,
            analysis_us: 0,
        };
        plan.sort_rules();
        let labels: Vec<&str> = plan.rules.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["r2", "r3", "r1"]);
        assert_eq!(plan.top_rule().unwrap().label, "r2");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let plan = AnalyzePlan {
            rules: Vec::new(),
            preds: Vec::new(),
            diagnostics: Vec::new(),
            recommend_demand: true,
            reason: "quote \" and \\ newline \n".into(),
            query: None,
            analysis_us: 3,
        };
        let json = plan.to_json_string();
        assert!(json.contains("\"recommend\":\"demand\""));
        assert!(json.contains("\\\""));
        assert!(json.contains("\\n"));
        assert!(!json.contains('\n'));
    }
}
