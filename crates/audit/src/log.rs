//! The on-disk audit log: a bounded ring of framed segment files.
//!
//! ## Layout
//!
//! One directory holds numbered segments:
//!
//! ```text
//! <dir>/audit-00000000.log
//! <dir>/audit-00000001.log
//! ...
//! ```
//!
//! Appends always go to the highest-numbered segment. When the active
//! segment exceeds the size cap or age cap, the writer rotates: opens
//! `audit-<seq+1>.log` and, if the ring now exceeds `max_segments`,
//! unlinks the oldest. The log is therefore bounded by roughly
//! `max_segments × max_segment_bytes` on disk no matter how long the
//! server runs.
//!
//! ## Crash safety
//!
//! Every append is one synchronous `write_all` of a checksummed frame
//! (`p3-store`'s shared `[len][crc][payload]` format) straight to the
//! file — no user-space buffering. A SIGKILL can therefore lose at most
//! the frame being written at that instant; recovery scans forward,
//! keeps every whole valid frame, and truncates the torn tail. No
//! fsync is issued: the durability target is process death, not power
//! loss, matching the store's journal.

use crate::record::AuditRecord;
use p3_store::frame::{scan_with, write_frame, ScanStop};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Sizing and rotation knobs for an [`AuditLog`].
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Directory holding the segment ring; created if absent.
    pub dir: PathBuf,
    /// Rotate the active segment once it exceeds this many bytes.
    pub max_segment_bytes: u64,
    /// Rotate the active segment once it is older than this many seconds
    /// (0 disables age-based rotation).
    pub max_segment_age_secs: u64,
    /// Keep at most this many segments; the oldest is unlinked beyond it.
    pub max_segments: usize,
    /// In-memory ring of recent records backing `recent`/`top` reads.
    pub recent_cap: usize,
}

impl AuditConfig {
    /// Defaults: 4 MiB segments, hourly rotation, 8-segment ring, 1024
    /// recent records in memory.
    pub fn new(dir: impl Into<PathBuf>) -> AuditConfig {
        AuditConfig {
            dir: dir.into(),
            max_segment_bytes: 4 << 20,
            max_segment_age_secs: 3600,
            max_segments: 8,
            recent_cap: 1024,
        }
    }
}

/// Counters reported by [`AuditLog::stats`] and `/audit` responses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditStats {
    /// Records appended since open.
    pub records_appended: u64,
    /// Records recovered from existing segments at open.
    pub records_recovered: u64,
    /// Segments currently on disk.
    pub segments: u64,
    /// Total bytes across all segments.
    pub total_bytes: u64,
    /// Segment rotations since open.
    pub rotations: u64,
    /// Old segments pruned since open.
    pub pruned: u64,
    /// Bad tails truncated during recovery at open.
    pub recovery_truncations: u64,
}

struct ActiveSegment {
    file: File,
    seq: u64,
    bytes: u64,
    opened: Instant,
}

struct Inner {
    active: ActiveSegment,
    /// Segment paths on disk, oldest first, including the active one.
    segments: VecDeque<(u64, PathBuf, u64)>, // (seq, path, bytes)
    recent: VecDeque<AuditRecord>,
    stats: AuditStats,
    /// Reusable encode buffers: the append hot path allocates nothing
    /// once these reach steady-state capacity.
    payload_buf: Vec<u8>,
    frame_buf: Vec<u8>,
}

/// A bounded, crash-safe audit log over a directory of framed segments.
pub struct AuditLog {
    config: AuditConfig,
    inner: Mutex<Inner>,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("audit-{seq:08}.log"))
}

fn parse_segment_seq(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("audit-")?.strip_suffix(".log")?;
    if rest.len() != 8 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Scans one segment file, returning its valid records and truncating any
/// bad tail in place (mirrors the store's journal recovery).
fn recover_segment(path: &Path) -> io::Result<(Vec<AuditRecord>, bool)> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    let mut records = Vec::new();
    let scan = scan_with(&buf, |payload| match AuditRecord::decode_payload(payload) {
        Some(r) => {
            records.push(r);
            true
        }
        None => false,
    });
    let truncated = scan.stop != ScanStop::Clean;
    if truncated {
        p3_obs::warn!(
            "audit segment has a bad tail; truncating",
            file = path.display(),
            reason = scan.stop,
            dropped_bytes = buf.len() as u64 - scan.valid_len,
            kept_records = records.len()
        );
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(scan.valid_len)?;
    }
    Ok((records, truncated))
}

impl AuditLog {
    /// Opens (or creates) the audit log in `config.dir`, recovering every
    /// existing segment: whole valid frames survive, bad tails are
    /// truncated, and the most recent records are loaded into the
    /// in-memory ring. Appends continue in the highest-numbered segment.
    pub fn open(config: AuditConfig) -> io::Result<AuditLog> {
        std::fs::create_dir_all(&config.dir)?;
        register_metrics();

        let mut seqs: Vec<u64> = std::fs::read_dir(&config.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_seq(&e.file_name().to_string_lossy()))
            .collect();
        seqs.sort_unstable();

        let mut stats = AuditStats::default();
        let mut segments = VecDeque::new();
        let mut recent = VecDeque::new();
        for &seq in &seqs {
            let path = segment_path(&config.dir, seq);
            let (records, truncated) = recover_segment(&path)?;
            if truncated {
                stats.recovery_truncations += 1;
            }
            stats.records_recovered += records.len() as u64;
            let bytes = std::fs::metadata(&path)?.len();
            segments.push_back((seq, path, bytes));
            for r in records {
                if recent.len() == config.recent_cap {
                    recent.pop_front();
                }
                recent.push_back(r);
            }
        }

        let seq = seqs.last().copied().unwrap_or(0);
        let path = segment_path(&config.dir, seq);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        if segments.is_empty() {
            segments.push_back((seq, path.clone(), bytes));
        }
        stats.segments = segments.len() as u64;
        stats.total_bytes = segments.iter().map(|(_, _, b)| b).sum();

        let log = AuditLog {
            config,
            inner: Mutex::new(Inner {
                active: ActiveSegment {
                    file,
                    seq,
                    bytes,
                    opened: Instant::now(),
                },
                segments,
                recent,
                stats,
                payload_buf: Vec::with_capacity(256),
                frame_buf: Vec::with_capacity(256),
            }),
        };
        log.publish_gauges(&log.inner.lock().unwrap().stats);
        Ok(log)
    }

    /// Appends one record: a single synchronous framed write, then
    /// rotation/pruning bookkeeping. Returns any I/O error; the caller
    /// decides whether that is fatal (the service logs and keeps serving).
    /// This sits on every request's latency path, so it stays allocation-
    /// free and defers gauge publication to [`AuditLog::publish_metrics`].
    pub fn append(&self, record: AuditRecord) -> io::Result<()> {
        let mut guard = self.inner.lock().unwrap();
        let Inner {
            active,
            segments,
            recent,
            stats,
            payload_buf,
            frame_buf,
        } = &mut *guard;
        payload_buf.clear();
        record.encode_payload_into(payload_buf);
        frame_buf.clear();
        write_frame(payload_buf, frame_buf);
        active.file.write_all(frame_buf)?;
        active.bytes += frame_buf.len() as u64;
        stats.total_bytes += frame_buf.len() as u64;
        stats.records_appended += 1;
        if let Some(back) = segments.back_mut() {
            back.2 = active.bytes;
        }
        records_total_metric().add(1);

        if self.config.recent_cap > 0 {
            if recent.len() == self.config.recent_cap {
                recent.pop_front();
            }
            recent.push_back(record);
        }

        let over_size = active.bytes >= self.config.max_segment_bytes;
        let over_age = self.config.max_segment_age_secs > 0
            && active.opened.elapsed().as_secs() >= self.config.max_segment_age_secs;
        if over_size || over_age {
            let inner = &mut *guard;
            self.rotate(inner)?;
            inner.stats.segments = inner.segments.len() as u64;
            inner.stats.total_bytes = inner.segments.iter().map(|(_, _, b)| b).sum();
            self.publish_gauges(&inner.stats);
        }
        Ok(())
    }

    fn rotate(&self, inner: &mut Inner) -> io::Result<()> {
        let seq = inner.active.seq + 1;
        let path = segment_path(&self.config.dir, seq);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        inner.active = ActiveSegment {
            file,
            seq,
            bytes: 0,
            opened: Instant::now(),
        };
        inner.segments.push_back((seq, path, 0));
        inner.stats.rotations += 1;
        rotations_total_metric().add(1);
        while inner.segments.len() > self.config.max_segments.max(1) {
            if let Some((_, old, _)) = inner.segments.pop_front() {
                // Best-effort: a failed unlink only delays pruning.
                let _ = std::fs::remove_file(old);
                inner.stats.pruned += 1;
            }
        }
        Ok(())
    }

    /// The most recent `n` records, newest first.
    pub fn recent(&self, n: usize) -> Vec<AuditRecord> {
        let inner = self.inner.lock().unwrap();
        inner.recent.iter().rev().take(n).cloned().collect()
    }

    /// The `n` worst offenders among recent records, sorted descending by
    /// `key`. Ties keep the newer record first.
    pub fn top(&self, n: usize, key: impl Fn(&AuditRecord) -> u64) -> Vec<AuditRecord> {
        let inner = self.inner.lock().unwrap();
        let mut rows: Vec<&AuditRecord> = inner.recent.iter().collect();
        // Stable sort over newest-first order keeps newer exemplars on ties.
        rows.reverse();
        rows.sort_by_key(|r| std::cmp::Reverse(key(r)));
        rows.into_iter().take(n).cloned().collect()
    }

    /// Current counters.
    pub fn stats(&self) -> AuditStats {
        self.inner.lock().unwrap().stats
    }

    /// Re-publishes the segment/byte gauges from the current stats.
    /// Appends defer this to scrape time to stay off the latency path;
    /// call it before rendering `/metrics`.
    pub fn publish_metrics(&self) {
        let stats = self.inner.lock().unwrap().stats;
        self.publish_gauges(&stats);
    }

    /// The directory this log writes to.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    fn publish_gauges(&self, stats: &AuditStats) {
        segments_metric().set(stats.segments as i64);
        bytes_metric().set(stats.total_bytes as i64);
    }
}

/// Offline reader for `p3 audit DIR`: scans every segment in sequence
/// order WITHOUT truncating bad tails (read-only), returning all valid
/// records plus the number of segments whose scan stopped dirty.
pub fn read_dir(dir: &Path) -> io::Result<(Vec<AuditRecord>, u64)> {
    let mut seqs: Vec<u64> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| parse_segment_seq(&e.file_name().to_string_lossy()))
        .collect();
    seqs.sort_unstable();
    let mut records = Vec::new();
    let mut dirty = 0u64;
    for seq in seqs {
        let mut buf = Vec::new();
        File::open(segment_path(dir, seq))?.read_to_end(&mut buf)?;
        let scan = scan_with(&buf, |payload| match AuditRecord::decode_payload(payload) {
            Some(r) => {
                records.push(r);
                true
            }
            None => false,
        });
        if scan.stop != ScanStop::Clean {
            dirty += 1;
        }
    }
    Ok((records, dirty))
}

// ---------------------------------------------------------------------------
// Metrics.

fn records_total_metric() -> &'static p3_obs::metrics::Counter {
    p3_obs::counter!(
        "p3_audit_records_total",
        "Audit records appended to the on-disk audit log"
    )
}

fn rotations_total_metric() -> &'static p3_obs::metrics::Counter {
    p3_obs::counter!(
        "p3_audit_rotations_total",
        "Audit segment rotations (size- or age-triggered)"
    )
}

fn segments_metric() -> &'static p3_obs::metrics::Gauge {
    p3_obs::gauge!("p3_audit_segments", "Audit segments currently on disk")
}

fn bytes_metric() -> &'static p3_obs::metrics::Gauge {
    p3_obs::gauge!(
        "p3_audit_log_bytes",
        "Total bytes across all audit segments"
    )
}

/// Registers every `p3_audit_*` metric family with the global registry.
pub fn register_metrics() {
    records_total_metric();
    rotations_total_metric();
    segments_metric();
    bytes_metric();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Outcome, StageTiming};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "p3-audit-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(i: u64) -> AuditRecord {
        AuditRecord {
            ts_ms: 1_000 + i,
            trace: format!("tr-{i}"),
            class: "probability".into(),
            eval_mode: "naive".into(),
            query_hash: i,
            outcome: Outcome::Ok,
            queue_wait_us: i,
            execute_us: 10 * i,
            total_us: 11 * i,
            stages: vec![StageTiming {
                name: "extract".into(),
                wall_us: 9 * i,
            }],
            derived_tuples: 100 - i.min(100),
            dnf_monomials: i % 7,
            dnf_literals: i % 13,
            ..AuditRecord::default()
        }
    }

    #[test]
    fn append_recover_round_trip() {
        let dir = tmpdir("roundtrip");
        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        for i in 0..20 {
            log.append(rec(i)).unwrap();
        }
        assert_eq!(log.stats().records_appended, 20);
        drop(log);

        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        let stats = log.stats();
        assert_eq!(stats.records_recovered, 20);
        assert_eq!(stats.recovery_truncations, 0);
        let recent = log.recent(5);
        assert_eq!(recent.len(), 5);
        assert_eq!(recent[0], rec(19), "newest first");
        assert_eq!(recent[4], rec(15));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmpdir("torn");
        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        for i in 0..5 {
            log.append(rec(i)).unwrap();
        }
        drop(log);

        let seg = segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        let stats = log.stats();
        assert_eq!(stats.records_recovered, 4, "whole frames survive");
        assert_eq!(stats.recovery_truncations, 1);
        // The log keeps appending cleanly after truncation.
        log.append(rec(99)).unwrap();
        drop(log);
        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        assert_eq!(log.stats().records_recovered, 5);
        assert_eq!(log.stats().recovery_truncations, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_bounds_the_ring() {
        let dir = tmpdir("ring");
        let mut config = AuditConfig::new(&dir);
        config.max_segment_bytes = 256;
        config.max_segments = 3;
        let log = AuditLog::open(config).unwrap();
        for i in 0..100 {
            log.append(rec(i)).unwrap();
        }
        let stats = log.stats();
        assert!(stats.rotations > 0, "{stats:?}");
        assert!(stats.pruned > 0, "{stats:?}");
        assert!(stats.segments <= 3, "{stats:?}");
        let on_disk = std::fs::read_dir(&dir).unwrap().count();
        assert!(on_disk <= 3, "ring leaked segments: {on_disk}");
        // Recovery over the ring sees only retained records.
        drop(log);
        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        let recovered = log.stats().records_recovered;
        assert!(recovered < 100 && recovered > 0, "{recovered}");
        let recent = log.recent(1);
        assert_eq!(recent[0].trace, "tr-99", "newest record survives the ring");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn top_sorts_by_key_descending() {
        let dir = tmpdir("top");
        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        for i in 0..10 {
            log.append(rec(i)).unwrap();
        }
        let top = log.top(3, |r| r.execute_us);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].execute_us, 90);
        assert_eq!(top[1].execute_us, 80);
        assert_eq!(top[2].execute_us, 70);
        let by_tuples = log.top(2, |r| r.derived_tuples);
        assert_eq!(by_tuples[0].derived_tuples, 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_trace_survives_disk_round_trip() {
        let dir = tmpdir("hostile");
        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        let mut r = rec(0);
        r.trace = "tr\n\"inject\":1}\u{7}\u{1F980} \\".into();
        log.append(r.clone()).unwrap();
        log.append(rec(1)).unwrap();
        drop(log);
        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        assert_eq!(log.stats().records_recovered, 2, "framing survived");
        assert_eq!(log.stats().recovery_truncations, 0);
        assert_eq!(log.recent(2)[1], r);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_dir_is_read_only() {
        let dir = tmpdir("readdir");
        let log = AuditLog::open(AuditConfig::new(&dir)).unwrap();
        for i in 0..3 {
            log.append(rec(i)).unwrap();
        }
        drop(log);
        let seg = segment_path(&dir, 0);
        let len = std::fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 1).unwrap();
        drop(f);
        let (records, dirty) = read_dir(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(dirty, 1);
        // File untouched by the reader.
        assert_eq!(std::fs::metadata(&seg).unwrap().len(), len - 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
