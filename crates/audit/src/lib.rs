//! # p3-audit
//!
//! Per-request audit log and cost accounting for `p3-serve`.
//!
//! Every service request — queries, admin ops, even malformed lines —
//! appends exactly one [`AuditRecord`] to an [`AuditLog`]: a bounded
//! ring of on-disk segments framed with `p3-store`'s shared
//! checksummed `[len][crc][payload]` format (see [`p3_store::frame`]).
//! A record carries the query-text hash (never the text), request
//! class, eval mode, trace id, queue-wait vs execute split, per-stage
//! timings, derived-tuple count, DNF width, cache deltas, and the
//! outcome — everything an operator needs to answer "which queries are
//! burning the CPU?" after the fact.
//!
//! The log is crash-safe under SIGKILL: each append is one synchronous
//! framed write, recovery keeps every whole valid frame and truncates
//! torn tails, mirroring the store's journal. It is bounded by
//! size/age-based segment rotation with oldest-segment pruning, so it
//! can run forever on a server meant for millions of users.
//!
//! This crate knows nothing about the service's protocol or JSON
//! layer; `p3-service` builds records and serves them over `audit-tail`
//! / `audit-top` ops and the `/audit` admin endpoints, and the `p3
//! audit` CLI reads a directory offline via [`log::read_dir`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod log;
pub mod record;

pub use log::{read_dir, AuditConfig, AuditLog, AuditStats};
pub use record::{fnv1a_64, json_escape, AuditRecord, Outcome, StageTiming, MAX_TOP_RULES};
