//! The audit record: one structured row per service request, with a
//! binary codec over `p3-store`'s shared frame layer and a canonical
//! JSON exposition.
//!
//! The binary payload starts with a one-byte version tag; all integers
//! are little-endian and all strings are `u32` length-prefixed UTF-8.
//! Client-controlled text (the trace id) is stored as opaque bytes
//! inside the checksummed frame — newlines, quotes, or arbitrary
//! unicode in it can never desynchronise the log — and is escaped
//! per RFC 8259 on the JSON side. Query text itself is never stored:
//! only its FNV-1a-64 hash, so the audit log leaks no query contents
//! and hostile query text cannot reach the exposition at all.

pub use p3_store::frame::fnv1a_64;

/// First payload layout (PR: audit plane). Still decodable; `rule_cost`
/// and `top_rules` default to empty on V1 records.
const TAG_V1: u8 = 1;

/// Current payload layout: V1 plus per-rule cost attribution (the total
/// measured rule cost this request triggered and the top rules by cost).
const TAG_V2: u8 = 2;

/// Cap on `top_rules` entries stored per record — the audit log records
/// the headline, `GET /explain` has the full ranking.
pub const MAX_TOP_RULES: usize = 3;

/// How a request ended, from the operator's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Answered successfully.
    Ok,
    /// Hit its deadline before the worker finished.
    Timeout,
    /// Rejected by the lint gate before evaluation.
    LintReject,
    /// Any other failure (parse error, unknown op, evaluation error).
    Error,
}

impl Outcome {
    /// Stable lowercase label used in JSON and metrics.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Timeout => "timeout",
            Outcome::LintReject => "lint-reject",
            Outcome::Error => "error",
        }
    }

    fn code(self) -> u8 {
        match self {
            Outcome::Ok => 0,
            Outcome::Timeout => 1,
            Outcome::LintReject => 2,
            Outcome::Error => 3,
        }
    }

    fn from_code(code: u8) -> Option<Outcome> {
        Some(match code {
            0 => Outcome::Ok,
            1 => Outcome::Timeout,
            2 => Outcome::LintReject,
            3 => Outcome::Error,
            _ => return None,
        })
    }
}

/// One named stage timing, copied from the session profile or measured
/// around the worker's evaluation calls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (`parse`, `transform`, `extract`, `probability`, ...).
    pub name: String,
    /// Wall time spent in the stage, microseconds.
    pub wall_us: u64,
}

/// One request's full cost accounting. Counter fields are deltas over
/// the request, read from process-global counters before and after the
/// worker ran; under concurrency they are attributions, not exact
/// isolations (same caveat as the `profile` op).
#[derive(Clone, Debug, PartialEq)]
pub struct AuditRecord {
    /// Unix milliseconds when the request finished.
    pub ts_ms: u64,
    /// Trace id — client-supplied and therefore hostile text.
    pub trace: String,
    /// Request class (`probability`, `provenance`, ... or `malformed`).
    pub class: String,
    /// Evaluation mode the request ran under (`naive` / `demand`).
    pub eval_mode: String,
    /// FNV-1a-64 of the query text; 0 when the op carries no query.
    pub query_hash: u64,
    /// How the request ended.
    pub outcome: Outcome,
    /// Time spent waiting in the job queue, microseconds.
    pub queue_wait_us: u64,
    /// Time spent executing in a worker, microseconds.
    pub execute_us: u64,
    /// End-to-end handler time, microseconds.
    pub total_us: u64,
    /// Per-stage wall-time split of `execute_us`.
    pub stages: Vec<StageTiming>,
    /// Tuples derived by rule evaluation during this request.
    pub derived_tuples: u64,
    /// Monomials in the answer's DNF provenance (0 if none computed).
    pub dnf_monomials: u64,
    /// Total literals across those monomials — the DNF "width".
    pub dnf_literals: u64,
    /// Session memo hits during this request.
    pub session_hits: u64,
    /// Session memo misses during this request.
    pub session_misses: u64,
    /// Provenance records flushed to the durable store by this request.
    pub store_records: u64,
    /// Extraction-memo hits during this request.
    pub extract_memo_hits: u64,
    /// Extraction-memo misses during this request.
    pub extract_memo_misses: u64,
    /// Measured rule cost (join candidates + firings + derived tuples)
    /// this request added — nonzero only when the request forced an
    /// evaluation, so cold queries rank high under `--by rule_cost`.
    pub rule_cost: u64,
    /// The costliest source rules of the evaluations this request forced,
    /// as `(label, cost)` pairs, at most [`MAX_TOP_RULES`].
    pub top_rules: Vec<(String, u64)>,
}

impl Default for AuditRecord {
    fn default() -> Self {
        AuditRecord {
            ts_ms: 0,
            trace: String::new(),
            class: String::new(),
            eval_mode: String::new(),
            query_hash: 0,
            outcome: Outcome::Error,
            queue_wait_us: 0,
            execute_us: 0,
            total_us: 0,
            stages: Vec::new(),
            derived_tuples: 0,
            dnf_monomials: 0,
            dnf_literals: 0,
            session_hits: 0,
            session_misses: 0,
            store_records: 0,
            extract_memo_hits: 0,
            extract_memo_misses: 0,
            rule_cost: 0,
            top_rules: Vec::new(),
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

impl AuditRecord {
    /// Encodes the record into the shared frame payload format.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(128);
        self.encode_payload_into(&mut p);
        p
    }

    /// Appends the encoded payload to `p` — the allocation-free form the
    /// log's hot append path uses with a reusable scratch buffer.
    pub fn encode_payload_into(&self, p: &mut Vec<u8>) {
        p.push(TAG_V2);
        put_u64(p, self.ts_ms);
        put_u64(p, self.query_hash);
        p.push(self.outcome.code());
        put_u64(p, self.queue_wait_us);
        put_u64(p, self.execute_us);
        put_u64(p, self.total_us);
        put_u64(p, self.derived_tuples);
        put_u64(p, self.dnf_monomials);
        put_u64(p, self.dnf_literals);
        put_u64(p, self.session_hits);
        put_u64(p, self.session_misses);
        put_u64(p, self.store_records);
        put_u64(p, self.extract_memo_hits);
        put_u64(p, self.extract_memo_misses);
        put_str(p, &self.trace);
        put_str(p, &self.class);
        put_str(p, &self.eval_mode);
        put_u32(p, self.stages.len() as u32);
        for stage in &self.stages {
            put_str(p, &stage.name);
            put_u64(p, stage.wall_us);
        }
        // V2 extension: rule-cost attribution.
        put_u64(p, self.rule_cost);
        put_u32(p, self.top_rules.len().min(MAX_TOP_RULES) as u32);
        for (label, cost) in self.top_rules.iter().take(MAX_TOP_RULES) {
            put_str(p, label);
            put_u64(p, *cost);
        }
    }

    /// Decodes a payload produced by [`AuditRecord::encode_payload`].
    /// `None` on any malformation (wrong tag, truncation, bad UTF-8,
    /// trailing garbage).
    pub fn decode_payload(payload: &[u8]) -> Option<AuditRecord> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let tag = r.u8()?;
        if tag != TAG_V1 && tag != TAG_V2 {
            return None;
        }
        let ts_ms = r.u64()?;
        let query_hash = r.u64()?;
        let outcome = Outcome::from_code(r.u8()?)?;
        let queue_wait_us = r.u64()?;
        let execute_us = r.u64()?;
        let total_us = r.u64()?;
        let derived_tuples = r.u64()?;
        let dnf_monomials = r.u64()?;
        let dnf_literals = r.u64()?;
        let session_hits = r.u64()?;
        let session_misses = r.u64()?;
        let store_records = r.u64()?;
        let extract_memo_hits = r.u64()?;
        let extract_memo_misses = r.u64()?;
        let trace = r.string()?;
        let class = r.string()?;
        let eval_mode = r.string()?;
        let n = r.u32()? as usize;
        let mut stages = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let name = r.string()?;
            let wall_us = r.u64()?;
            stages.push(StageTiming { name, wall_us });
        }
        let (rule_cost, top_rules) = if tag >= TAG_V2 {
            let rule_cost = r.u64()?;
            let n = r.u32()? as usize;
            if n > MAX_TOP_RULES {
                return None;
            }
            let mut top_rules = Vec::with_capacity(n);
            for _ in 0..n {
                let label = r.string()?;
                let cost = r.u64()?;
                top_rules.push((label, cost));
            }
            (rule_cost, top_rules)
        } else {
            (0, Vec::new())
        };
        let record = AuditRecord {
            ts_ms,
            trace,
            class,
            eval_mode,
            query_hash,
            outcome,
            queue_wait_us,
            execute_us,
            total_us,
            stages,
            derived_tuples,
            dnf_monomials,
            dnf_literals,
            session_hits,
            session_misses,
            store_records,
            extract_memo_hits,
            extract_memo_misses,
            rule_cost,
            top_rules,
        };
        r.done().then_some(record)
    }

    /// Canonical JSON object for this record — the exact shape served by
    /// `GET /audit` and the `audit-tail` op. All strings are escaped per
    /// RFC 8259, so hostile trace text cannot break the emitted JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        out.push_str(&format!("\"ts_ms\":{}", self.ts_ms));
        out.push_str(&format!(",\"trace\":{}", json_escape(&self.trace)));
        out.push_str(&format!(",\"class\":{}", json_escape(&self.class)));
        out.push_str(&format!(",\"eval_mode\":{}", json_escape(&self.eval_mode)));
        out.push_str(&format!(",\"query_hash\":\"{:016x}\"", self.query_hash));
        out.push_str(&format!(",\"outcome\":\"{}\"", self.outcome.label()));
        out.push_str(&format!(",\"queue_wait_us\":{}", self.queue_wait_us));
        out.push_str(&format!(",\"execute_us\":{}", self.execute_us));
        out.push_str(&format!(",\"total_us\":{}", self.total_us));
        out.push_str(",\"stages\":[");
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"wall_us\":{}}}",
                json_escape(&stage.name),
                stage.wall_us
            ));
        }
        out.push(']');
        out.push_str(&format!(",\"derived_tuples\":{}", self.derived_tuples));
        out.push_str(&format!(",\"dnf_monomials\":{}", self.dnf_monomials));
        out.push_str(&format!(",\"dnf_literals\":{}", self.dnf_literals));
        out.push_str(&format!(",\"session_hits\":{}", self.session_hits));
        out.push_str(&format!(",\"session_misses\":{}", self.session_misses));
        out.push_str(&format!(",\"store_records\":{}", self.store_records));
        out.push_str(&format!(
            ",\"extract_memo_hits\":{}",
            self.extract_memo_hits
        ));
        out.push_str(&format!(
            ",\"extract_memo_misses\":{}",
            self.extract_memo_misses
        ));
        out.push_str(&format!(",\"rule_cost\":{}", self.rule_cost));
        out.push_str(",\"top_rules\":[");
        for (i, (label, cost)) in self.top_rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"cost\":{}}}",
                json_escape(label),
                cost
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal (including surrounding quotes) per RFC 8259:
/// quote, backslash, and all control characters below 0x20 escaped.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Little-endian reader with bounds checks; `None` means truncated/corrupt.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn string(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> AuditRecord {
        AuditRecord {
            ts_ms: 1_700_000_000_123,
            trace: "tr-0042".into(),
            class: "probability".into(),
            eval_mode: "demand".into(),
            query_hash: fnv1a_64(r#"know("Ben","Elena")"#),
            outcome: Outcome::Ok,
            queue_wait_us: 85,
            execute_us: 1200,
            total_us: 1402,
            stages: vec![
                StageTiming {
                    name: "extract".into(),
                    wall_us: 900,
                },
                StageTiming {
                    name: "probability".into(),
                    wall_us: 300,
                },
            ],
            derived_tuples: 57,
            dnf_monomials: 3,
            dnf_literals: 8,
            session_hits: 1,
            session_misses: 2,
            store_records: 4,
            extract_memo_hits: 10,
            extract_memo_misses: 5,
            rule_cost: 312,
            top_rules: vec![("r3".into(), 200), ("r1".into(), 80)],
        }
    }

    #[test]
    fn payload_round_trips() {
        let record = sample();
        let decoded = AuditRecord::decode_payload(&record.encode_payload()).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn hostile_trace_round_trips() {
        let mut record = sample();
        record.trace = "line1\nline2\t\"quoted\\\" \u{1F4A3} \u{0000}bell\u{0007}".into();
        record.outcome = Outcome::Timeout;
        let decoded = AuditRecord::decode_payload(&record.encode_payload()).unwrap();
        assert_eq!(decoded, record);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let payload = sample().encode_payload();
        for cut in 0..payload.len() {
            assert!(
                AuditRecord::decode_payload(&payload[..cut]).is_none(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn v1_payloads_still_decode_with_default_rule_cost() {
        // Re-encode the sample in the V1 layout by hand: V2 minus the
        // trailing rule-cost block, with a V1 tag.
        let record = sample();
        let v2 = record.encode_payload();
        let mut rule_block = Vec::new();
        put_u64(&mut rule_block, record.rule_cost);
        put_u32(&mut rule_block, record.top_rules.len() as u32);
        for (label, cost) in &record.top_rules {
            put_str(&mut rule_block, label);
            put_u64(&mut rule_block, *cost);
        }
        let mut v1 = v2[..v2.len() - rule_block.len()].to_vec();
        v1[0] = TAG_V1;
        let decoded = AuditRecord::decode_payload(&v1).unwrap();
        assert_eq!(decoded.rule_cost, 0);
        assert!(decoded.top_rules.is_empty());
        assert_eq!(decoded.class, record.class);
        assert_eq!(decoded.stages, record.stages);
    }

    #[test]
    fn oversized_top_rules_list_is_rejected_and_encode_caps() {
        let mut record = sample();
        record.top_rules = (0..10).map(|i| (format!("r{i}"), i as u64)).collect();
        let decoded = AuditRecord::decode_payload(&record.encode_payload()).unwrap();
        assert_eq!(decoded.top_rules.len(), MAX_TOP_RULES, "encode caps");
        // A payload claiming more than MAX_TOP_RULES entries is corrupt.
        let mut payload = sample().encode_payload();
        let count_at = payload.len()
            - sample()
                .top_rules
                .iter()
                .map(|(l, _)| 4 + l.len() + 8)
                .sum::<usize>()
            - 4;
        payload[count_at..count_at + 4].copy_from_slice(&(MAX_TOP_RULES as u32 + 1).to_le_bytes());
        assert!(AuditRecord::decode_payload(&payload).is_none());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = sample().encode_payload();
        payload.push(0);
        assert!(AuditRecord::decode_payload(&payload).is_none());
    }

    #[test]
    fn json_is_escaped_and_parseable_shape() {
        let mut record = sample();
        record.trace = "a\"b\\c\nd\u{0001}e".into();
        let json = record.to_json_string();
        assert!(json.contains(r#""trace":"a\"b\\c\nd\u0001e""#), "{json}");
        // No raw control characters may survive into the JSON text.
        assert!(json.chars().all(|c| (c as u32) >= 0x20), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(Outcome::Ok.label(), "ok");
        assert_eq!(Outcome::Timeout.label(), "timeout");
        assert_eq!(Outcome::LintReject.label(), "lint-reject");
        assert_eq!(Outcome::Error.label(), "error");
        for code in 0..4 {
            let o = Outcome::from_code(code).unwrap();
            assert_eq!(o.code(), code);
        }
        assert!(Outcome::from_code(9).is_none());
    }
}
