//! The `p3` command-line tool: evaluate a ProbLog-like program with
//! provenance and run the four P3 query types from the shell.
//!
//! ```sh
//! p3 program.pl --query 'know("Ben","Elena")' --explain
//! p3 program.pl --query 'know("Ben","Elena")' --prob mc --samples 200000
//! p3 program.pl --query 'know("Ben","Elena")' --derivation 0.01
//! p3 program.pl --query 'know("Ben","Elena")' --influence 5
//! p3 program.pl --query 'know("Ben","Elena")' --modify 0.5 --facts-only
//! p3 program.pl --stats
//! ```

use p3::core::{
    influence_query, modification_query, sufficient_provenance, DerivationAlgo, EvalMode,
    InfluenceMethod, InfluenceOptions, ModificationOptions, ProbMethod, SessionOptions, Strategy,
    P3,
};
use p3::prob::McConfig;
use p3::provenance::extract::ExtractOptions;
use std::process::ExitCode;

const USAGE: &str = "\
p3 — provenance queries for probabilistic logic programs

USAGE:
    p3 <PROGRAM.pl> [OPTIONS]
    p3 explain <PROGRAM.pl> --query <ATOM> [--eval-mode <M>] [--json | --folded]
    p3 analyze <PROGRAM.pl> [--query <ATOM>] [--calibrate] [--json] [--eval-mode <M>]
    p3 lint <PROGRAM.pl>... [--json] [--workloads <N>]
    p3 audit <DIR> [--json] [--top <N>] [--by <K>]

OPTIONS:
    --query <ATOM>         ground atom to analyse, e.g. 'know(\"Ben\",\"Elena\")'
    --explain              print the derivation tree of the queried tuple
    --dot <FILE>           write the provenance subgraph as Graphviz dot
    --prob <METHOD>        success probability: exact | bdd | mc | kl | pmc
    --derivation <EPS>     sufficient provenance within error EPS
    --algo <A>             derivation algorithm: greedy (default) | resuciu
    --influence [K]        top-K most influential clauses (default K = 10)
    --modify <TARGET>      minimal-cost plan reaching probability TARGET
    --facts-only           restrict modification/influence to base tuples
    --strategy <S>         modification strategy: greedy (default) | random
    --hop-limit <N>        cap provenance extraction depth
    --eval-mode <M>        auto (default) | naive | demand. Demand magic-transforms
                           the program per query and derives only the relevant
                           fragment; auto picks demand for recursive programs
    --samples <N>          Monte-Carlo samples (default 100000)
    --seed <N>             Monte-Carlo seed (default 7033)
    --threads <N>          threads for pmc; 0 = auto (P3_THREADS env var,
                           else available cores capped at 16)
    --trace-out <FILE>     record pipeline spans and write Chrome trace-event
                           JSON (load in chrome://tracing or Perfetto)
    --stats                print engine and provenance statistics
    --help                 show this help

EXPLAIN OPTIONS (after 'p3 explain'):
    --query <ATOM>         ground atom whose evaluation cost to attribute (required)
    --eval-mode <M>        auto (default) | naive | demand, as for plain queries
    --json                 one JSON object (the wire shape of the 'explain' service op)
    --folded               folded 'frame;frame cost' lines for flamegraph tooling
    (default output is a rustc-style plan: rules ranked by measured cost —
    firings, derived tuples, join candidates, iterations, index usage — plus
    DNF shape, cache deltas and any measured P3603/P3604 recommendations)

ANALYZE OPTIONS (after 'p3 analyze'):
    --query <ATOM>         also predict per-query-class work for this atom's predicate
    --calibrate            run the query (required with this flag) and report
                           predicted-vs-measured rule rank agreement
    --json                 one JSON object (the wire shape of the 'analyze' service op)
    --eval-mode <M>        evaluation mode used by --calibrate's measured run
    (default output is the predicted plan: rules ranked by predicted cost —
    firings, tuples, join candidates, iterations — plus per-predicate
    cardinality/DNF-width bounds, the eval-mode recommendation with its
    reason, and any P37xx prediction diagnostics; nothing is evaluated
    unless --calibrate asks for the measured comparison)

LINT OPTIONS (after 'p3 lint'):
    --json                 one JSON line per program instead of rustc-style text
    --workloads <N>        also lint N generated random workload programs
    (exit status is 1 when any program has error-severity findings)

AUDIT OPTIONS (after 'p3 audit'):
    --json                 one JSON line per record (the canonical /audit shape)
    --top <N>              print only the N costliest records
    --by <K>               ranking key for --top: latency (default) | tuples |
                           dnf_width | rule_cost
    (reads a p3-serve --audit-dir segment ring offline, without truncating
    torn tails; exit status is 1 when any segment scan stopped dirty)
";

#[derive(Debug)]
struct Options {
    program_path: String,
    query: Option<String>,
    explain: bool,
    dot: Option<String>,
    prob: Option<String>,
    derivation: Option<f64>,
    algo: DerivationAlgo,
    influence: Option<usize>,
    modify: Option<f64>,
    facts_only: bool,
    strategy: Strategy,
    hop_limit: Option<usize>,
    eval_mode: EvalMode,
    samples: usize,
    seed: u64,
    threads: usize,
    trace_out: Option<String>,
    stats: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    // Surface a bad P3_THREADS as a normal CLI error, not a panic.
    p3::prob::parallel::threads_from_env()?;
    let mut opts = Options {
        program_path: String::new(),
        query: None,
        explain: false,
        dot: None,
        prob: None,
        derivation: None,
        algo: DerivationAlgo::NaiveGreedy,
        influence: None,
        modify: None,
        facts_only: false,
        strategy: Strategy::Greedy,
        hop_limit: None,
        eval_mode: EvalMode::Auto,
        samples: 100_000,
        seed: 0x7033,
        threads: p3::prob::parallel::default_threads(),
        trace_out: None,
        stats: false,
    };
    let mut it = args.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--query" => opts.query = Some(value(&mut it, "--query")?),
            "--explain" => opts.explain = true,
            "--dot" => opts.dot = Some(value(&mut it, "--dot")?),
            "--prob" => opts.prob = Some(value(&mut it, "--prob")?),
            "--derivation" => {
                let v = value(&mut it, "--derivation")?;
                opts.derivation = Some(v.parse().map_err(|_| format!("bad epsilon '{v}'"))?);
            }
            "--algo" => {
                opts.algo = match value(&mut it, "--algo")?.as_str() {
                    "greedy" => DerivationAlgo::NaiveGreedy,
                    "resuciu" => DerivationAlgo::ReSuciu,
                    other => return Err(format!("unknown algorithm '{other}'")),
                }
            }
            "--influence" => {
                // Optional numeric argument.
                let k = match it.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let v = it.next().expect("peeked");
                        v.parse().map_err(|_| format!("bad top-K '{v}'"))?
                    }
                    _ => 10,
                };
                opts.influence = Some(k);
            }
            "--modify" => {
                let v = value(&mut it, "--modify")?;
                opts.modify = Some(v.parse().map_err(|_| format!("bad target '{v}'"))?);
            }
            "--facts-only" => opts.facts_only = true,
            "--strategy" => {
                opts.strategy = match value(&mut it, "--strategy")?.as_str() {
                    "greedy" => Strategy::Greedy,
                    "random" => Strategy::Random { seed: opts.seed },
                    other => return Err(format!("unknown strategy '{other}'")),
                }
            }
            "--hop-limit" => {
                let v = value(&mut it, "--hop-limit")?;
                opts.hop_limit = Some(v.parse().map_err(|_| format!("bad hop limit '{v}'"))?);
            }
            "--eval-mode" => {
                let v = value(&mut it, "--eval-mode")?;
                opts.eval_mode = v.parse()?;
            }
            "--samples" => {
                let v = value(&mut it, "--samples")?;
                opts.samples = v.parse().map_err(|_| format!("bad sample count '{v}'"))?;
            }
            "--seed" => {
                let v = value(&mut it, "--seed")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--threads" => {
                let v = value(&mut it, "--threads")?;
                opts.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--trace-out" => opts.trace_out = Some(value(&mut it, "--trace-out")?),
            "--stats" => opts.stats = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path => {
                if opts.program_path.is_empty() {
                    opts.program_path = path.to_string();
                } else {
                    return Err(format!("unexpected argument '{path}'"));
                }
            }
        }
    }
    if opts.program_path.is_empty() {
        return Err("no program file given\n\n".to_string() + USAGE);
    }
    Ok(opts)
}

fn prob_method(opts: &Options) -> Result<ProbMethod, String> {
    let cfg = McConfig {
        samples: opts.samples,
        seed: opts.seed,
    };
    match opts.prob.as_deref().unwrap_or("exact") {
        "exact" => Ok(ProbMethod::Exact),
        "bdd" => Ok(ProbMethod::Bdd),
        "mc" => Ok(ProbMethod::MonteCarlo(cfg)),
        "kl" => Ok(ProbMethod::KarpLuby(cfg)),
        "pmc" => Ok(ProbMethod::ParallelMc(cfg, opts.threads)),
        other => Err(format!("unknown probability method '{other}'")),
    }
}

fn run(opts: &Options) -> Result<(), String> {
    if opts.trace_out.is_some() {
        // Enable before loading the program so engine/provenance spans
        // from the initial evaluation land in the trace too.
        p3::obs::span::set_enabled(true);
    }
    let source = std::fs::read_to_string(&opts.program_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.program_path))?;
    let system = P3::from_source(&source).map_err(|e| e.to_string())?;
    let extract = match opts.hop_limit {
        Some(limit) => ExtractOptions::with_max_depth(limit),
        None => ExtractOptions::unbounded(),
    };
    let method = prob_method(opts)?;

    if opts.stats {
        let graph = system.graph();
        println!("clauses:            {}", system.program().len());
        println!("tuples derived:     {}", system.database().len());
        println!("provenance tuples:  {}", graph.num_tuples());
        println!("rule executions:    {}", graph.num_execs());
        println!("provenance edges:   {}", graph.num_edges());
    }

    let Some(query) = &opts.query else {
        if !opts.stats {
            return Err("nothing to do: pass --query or --stats".to_string());
        }
        return Ok(());
    };

    // The session resolves --eval-mode against the program and, in demand
    // mode, magic-transforms per query instead of forcing the whole model.
    let session = system.session_with(SessionOptions {
        eval_mode: opts.eval_mode,
        ..Default::default()
    });
    let id = session
        .provenance_id_with(query, extract)
        .map_err(|e| e.to_string())?;
    let dnf = (*session.dnf(id)).clone();
    let p = method.probability(&dnf, system.vars());
    println!("P[{query}] = {p:.6}   ({} derivations)", dnf.len());

    if opts.explain {
        let explanation = system
            .explain_with(query, method, extract)
            .map_err(|e| e.to_string())?;
        println!("\nderivations:\n{}", explanation.text);
        println!("polynomial: {}", system.render_polynomial(&dnf));
    }

    if let Some(path) = &opts.dot {
        let tuple = system.tuple(query).map_err(|e| e.to_string())?;
        let dot =
            p3::provenance::dot::to_dot(system.graph(), system.database(), system.program(), tuple);
        std::fs::write(path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("provenance graph written to {path}");
    }

    if let Some(eps) = opts.derivation {
        let suff = sufficient_provenance(&dnf, system.vars(), eps, opts.algo, method);
        println!(
            "\nsufficient provenance (eps = {eps}): kept {}/{} derivations, P = {:.6} \
             (error {:.6})",
            suff.polynomial.len(),
            suff.original_len,
            suff.probability,
            suff.error
        );
        println!("λS = {}", system.render_polynomial(&suff.polynomial));
    }

    let facts_filter = || -> Vec<p3::prob::VarId> {
        system
            .program()
            .iter()
            .filter(|(_, c)| c.is_fact())
            .map(|(id, _)| p3::provenance::vars::var_of(id))
            .collect()
    };

    if let Some(k) = opts.influence {
        let cfg = McConfig {
            samples: opts.samples,
            seed: opts.seed,
        };
        let ranked = influence_query(
            &dnf,
            system.vars(),
            &InfluenceOptions {
                method: InfluenceMethod::Mc(cfg),
                top_k: Some(k),
                restrict_to: opts.facts_only.then(facts_filter),
                ..Default::default()
            },
        );
        println!("\ntop-{k} influential clauses:");
        for (i, e) in ranked.iter().enumerate() {
            let clause = system
                .program()
                .clause(p3::provenance::vars::clause_of(e.var));
            println!(
                "  {:>2}. {:<12} {}  influence = {:.4}",
                i + 1,
                system.vars().name(e.var),
                clause.head.display(system.program().symbols()),
                e.influence
            );
        }
    }

    if let Some(target) = opts.modify {
        let plan = modification_query(
            &dnf,
            system.vars(),
            target,
            &ModificationOptions {
                modifiable: opts.facts_only.then(facts_filter),
                strategy: opts.strategy,
                ..Default::default()
            },
        );
        println!("\nmodification plan (target P = {target}):");
        for (i, s) in plan.steps.iter().enumerate() {
            println!(
                "  step {}: {} {:.4} -> {:.4}   (P = {:.4})",
                i + 1,
                system.vars().name(s.var),
                s.from,
                s.to,
                s.resulting_probability
            );
        }
        println!(
            "  total cost = {:.4}; achieved P = {:.4}; reached target: {}",
            plan.total_cost, plan.achieved_probability, plan.reached_target
        );
    }

    if let Some(path) = &opts.trace_out {
        let json = p3::obs::span::chrome_trace_json();
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("trace written to {path} (open in chrome://tracing)");
    }
    Ok(())
}

/// Options for the `p3 explain` subcommand.
#[derive(Debug)]
struct ExplainOptions {
    program_path: String,
    query: String,
    eval_mode: EvalMode,
    json: bool,
    folded: bool,
}

fn parse_explain_args(args: &[String]) -> Result<ExplainOptions, String> {
    let mut opts = ExplainOptions {
        program_path: String::new(),
        query: String::new(),
        eval_mode: EvalMode::Auto,
        json: false,
        folded: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--query" => {
                opts.query = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--query requires a value".to_string())?;
            }
            "--eval-mode" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--eval-mode requires a value".to_string())?;
                opts.eval_mode = v.parse()?;
            }
            "--json" => opts.json = true,
            "--folded" => opts.folded = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path if opts.program_path.is_empty() => opts.program_path = path.to_string(),
            path => return Err(format!("unexpected argument '{path}'")),
        }
    }
    if opts.program_path.is_empty() {
        return Err("p3 explain: no program file given\n\n".to_string() + USAGE);
    }
    if opts.query.is_empty() {
        return Err("p3 explain: --query is required\n\n".to_string() + USAGE);
    }
    if opts.json && opts.folded {
        return Err("p3 explain: --json and --folded are mutually exclusive".to_string());
    }
    Ok(opts)
}

fn run_explain(opts: &ExplainOptions) -> Result<String, String> {
    let source = std::fs::read_to_string(&opts.program_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.program_path))?;
    let system = P3::from_source(&source).map_err(|e| e.to_string())?;
    let session = system.session_with(SessionOptions {
        eval_mode: opts.eval_mode,
        ..Default::default()
    });
    let explained = session.explain(&opts.query).map_err(|e| e.to_string())?;
    if opts.json {
        let mut out = explained.to_json_string();
        out.push('\n');
        Ok(out)
    } else if opts.folded {
        Ok(explained.to_folded())
    } else {
        Ok(explained.render_text())
    }
}

/// Options for the `p3 analyze` subcommand.
#[derive(Debug)]
struct AnalyzeOptions {
    program_path: String,
    query: Option<String>,
    eval_mode: EvalMode,
    json: bool,
    calibrate: bool,
}

fn parse_analyze_args(args: &[String]) -> Result<AnalyzeOptions, String> {
    let mut opts = AnalyzeOptions {
        program_path: String::new(),
        query: None,
        eval_mode: EvalMode::Auto,
        json: false,
        calibrate: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--query" => {
                opts.query = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| "--query requires a value".to_string())?,
                );
            }
            "--eval-mode" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--eval-mode requires a value".to_string())?;
                opts.eval_mode = v.parse()?;
            }
            "--json" => opts.json = true,
            "--calibrate" => opts.calibrate = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path if opts.program_path.is_empty() => opts.program_path = path.to_string(),
            path => return Err(format!("unexpected argument '{path}'")),
        }
    }
    if opts.program_path.is_empty() {
        return Err("p3 analyze: no program file given\n\n".to_string() + USAGE);
    }
    if opts.calibrate && opts.query.is_none() {
        return Err("p3 analyze: --calibrate requires --query".to_string());
    }
    Ok(opts)
}

fn run_analyze(opts: &AnalyzeOptions) -> Result<String, String> {
    let source = std::fs::read_to_string(&opts.program_path)
        .map_err(|e| format!("cannot read {}: {e}", opts.program_path))?;
    let system = P3::from_source(&source).map_err(|e| e.to_string())?;
    let session = system.session_with(SessionOptions {
        eval_mode: opts.eval_mode,
        ..Default::default()
    });
    let plan = session.analyze(opts.query.as_deref());
    if let Some(q) = opts.query.as_deref() {
        if plan.query.is_none() {
            return Err(format!(
                "p3 analyze: bad query '{q}': not an atom over a program predicate"
            ));
        }
    }
    if !opts.calibrate {
        return Ok(if opts.json {
            plan.to_json_string() + "\n"
        } else {
            plan.render_text()
        });
    }

    // --calibrate: run the query the normal way and line the measured
    // rule costs up against the prediction.
    let query = opts.query.as_deref().expect("checked in parse");
    let explained = session.explain(query).map_err(|e| e.to_string())?;
    let predicted: Vec<(String, u64)> = plan
        .rules
        .iter()
        .map(|r| (r.label.clone(), r.cost()))
        .collect();
    let measured: Vec<(String, u64)> = explained
        .plan
        .rules
        .iter()
        .map(|r| (r.label.clone(), r.cost()))
        .collect();
    let correlation = p3::core::rank_correlation(&predicted, &measured);
    let top_of = |costs: &[(String, u64)]| -> Option<String> {
        costs
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(l, _)| l.clone())
    };
    let top_predicted = top_of(&predicted);
    let top_measured = top_of(
        &measured
            .iter()
            .filter(|(_, c)| *c > 0)
            .cloned()
            .collect::<Vec<_>>(),
    )
    .or(top_of(&measured));
    let top_match = top_predicted.is_some() && top_predicted == top_measured;

    if opts.json {
        let mut out = String::from("{\"analyze\":");
        out.push_str(&plan.to_json_string());
        out.push_str(&format!(
            ",\"calibration\":{{\"query\":{:?},\"eval_mode\":\"{}\",\"correlation\":{:.4},\
             \"top_predicted\":{:?},\"top_measured\":{:?},\"top_match\":{}}}}}\n",
            query,
            session.eval_mode().as_str(),
            correlation,
            top_predicted.as_deref().unwrap_or("-"),
            top_measured.as_deref().unwrap_or("-"),
            top_match,
        ));
        return Ok(out);
    }

    let mut out = plan.render_text();
    let measured_of: std::collections::HashMap<&str, u64> =
        measured.iter().map(|(l, c)| (l.as_str(), *c)).collect();
    out.push_str(&format!(
        "calibrate: {} [{} mode]\n  rule    predicted    measured\n",
        query,
        session.eval_mode().as_str()
    ));
    for (label, predicted_cost) in &predicted {
        let shown = measured_of
            .get(label.as_str())
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!("  {label:<6}  {predicted_cost:<11}  {shown}\n"));
    }
    out.push_str(&format!(
        "  rank correlation {:.2}, top rule match: {} (predicted {}, measured {})\n",
        correlation,
        if top_match { "yes" } else { "NO" },
        top_predicted.as_deref().unwrap_or("-"),
        top_measured.as_deref().unwrap_or("-"),
    ));
    Ok(out)
}

/// Options for the `p3 lint` subcommand.
#[derive(Debug, PartialEq)]
struct LintOptions {
    paths: Vec<String>,
    json: bool,
    workloads: usize,
}

fn parse_lint_args(args: &[String]) -> Result<LintOptions, String> {
    let mut opts = LintOptions {
        paths: Vec::new(),
        json: false,
        workloads: 0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--json" => opts.json = true,
            "--workloads" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--workloads requires a value".to_string())?;
                opts.workloads = v.parse().map_err(|_| format!("bad workload count '{v}'"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path => opts.paths.push(path.to_string()),
        }
    }
    if opts.paths.is_empty() && opts.workloads == 0 {
        return Err("p3 lint: no programs given\n\n".to_string() + USAGE);
    }
    Ok(opts)
}

/// Lints one named source, printing findings; returns whether it is free of
/// error-severity findings.
fn lint_one(name: &str, src: &str, json: bool, out: &mut String) -> bool {
    let report = p3::lint::lint_source(src);
    if json {
        out.push_str(&format!(
            "{{\"file\":{name:?},\"clean\":{},\"findings\":{}}}\n",
            report.is_clean(),
            report.to_json()
        ));
    } else if report.diagnostics.is_empty() {
        out.push_str(&format!("{name}: clean\n"));
    } else {
        out.push_str(&format!("{name}: {}\n", report.summary_line()));
        out.push_str(&report.render(Some(src), Some(name)));
    }
    report.is_clean()
}

fn run_lint(opts: &LintOptions) -> Result<(String, bool), String> {
    let mut out = String::new();
    let mut all_clean = true;
    for path in &opts.paths {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        all_clean &= lint_one(path, &src, opts.json, &mut out);
    }
    for seed in 0..opts.workloads as u64 {
        let program = p3::workloads::random_programs::generate(
            p3::workloads::random_programs::RandomConfig {
                seed,
                ..Default::default()
            },
        );
        let src = program.source().unwrap_or("").to_string();
        all_clean &= lint_one(&format!("workload(seed={seed})"), &src, opts.json, &mut out);
    }
    Ok((out, all_clean))
}

/// Options for the `p3 audit` subcommand.
#[derive(Debug, PartialEq)]
struct AuditOptions {
    dir: String,
    json: bool,
    top: Option<usize>,
    by: String,
}

fn parse_audit_args(args: &[String]) -> Result<AuditOptions, String> {
    let mut opts = AuditOptions {
        dir: String::new(),
        json: false,
        top: None,
        by: "latency".to_string(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--json" => opts.json = true,
            "--top" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--top requires a value".to_string())?;
                opts.top = Some(v.parse().map_err(|_| format!("bad --top value '{v}'"))?);
            }
            "--by" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--by requires a value".to_string())?;
                match v.as_str() {
                    "latency" | "tuples" | "dnf_width" | "rule_cost" => opts.by = v.clone(),
                    other => {
                        return Err(format!(
                            "unknown --by key '{other}' (expected latency, tuples, dnf_width, \
                             or rule_cost)"
                        ))
                    }
                }
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            path if opts.dir.is_empty() => opts.dir = path.to_string(),
            path => return Err(format!("unexpected argument '{path}'")),
        }
    }
    if opts.dir.is_empty() {
        return Err("p3 audit: no directory given\n\n".to_string() + USAGE);
    }
    Ok(opts)
}

fn run_audit(opts: &AuditOptions) -> Result<(String, bool), String> {
    let (mut records, dirty) = p3::audit::read_dir(std::path::Path::new(&opts.dir))
        .map_err(|e| format!("cannot read audit dir {}: {e}", opts.dir))?;
    if let Some(n) = opts.top {
        let key: fn(&p3::audit::AuditRecord) -> u64 = match opts.by.as_str() {
            "tuples" => |r| r.derived_tuples,
            "dnf_width" => |r| r.dnf_literals,
            "rule_cost" => |r| r.rule_cost,
            _ => |r| r.total_us,
        };
        records.sort_by_key(|r| std::cmp::Reverse(key(r)));
        records.truncate(n);
    }
    let mut out = String::new();
    if opts.json {
        for r in &records {
            out.push_str(&r.to_json_string());
            out.push('\n');
        }
    } else {
        for r in &records {
            out.push_str(&format!(
                "{:>13}  {:<12} {:<11} {:>9} us  tuples={:<6} dnf={}x{}  trace={}\n",
                r.ts_ms,
                r.class,
                r.outcome.label(),
                r.total_us,
                r.derived_tuples,
                r.dnf_monomials,
                r.dnf_literals,
                // Trace ids are client-supplied; escape before terminal output.
                p3::audit::json_escape(&r.trace),
            ));
        }
        out.push_str(&format!(
            "{} record(s); {} segment(s) with dirty tails\n",
            records.len(),
            dirty
        ));
    }
    Ok((out, dirty == 0))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("explain") {
        let opts = match parse_explain_args(&args[1..]) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        return match run_explain(&opts) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("analyze") {
        let opts = match parse_analyze_args(&args[1..]) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        return match run_analyze(&opts) {
            Ok(out) => {
                print!("{out}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("audit") {
        let opts = match parse_audit_args(&args[1..]) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        return match run_audit(&opts) {
            Ok((out, clean)) => {
                print!("{out}");
                if clean {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("lint") {
        let opts = match parse_lint_args(&args[1..]) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
        return match run_lint(&opts) {
            Ok((out, clean)) => {
                print!("{out}");
                if clean {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let opts = parse_args(&args(&[
            "prog.pl",
            "--query",
            "p(a)",
            "--explain",
            "--prob",
            "mc",
            "--samples",
            "5000",
            "--influence",
            "3",
            "--modify",
            "0.5",
            "--facts-only",
            "--hop-limit",
            "4",
            "--eval-mode",
            "naive",
        ]))
        .unwrap();
        assert_eq!(opts.program_path, "prog.pl");
        assert_eq!(opts.query.as_deref(), Some("p(a)"));
        assert!(opts.explain);
        assert_eq!(opts.prob.as_deref(), Some("mc"));
        assert_eq!(opts.samples, 5000);
        assert_eq!(opts.influence, Some(3));
        assert_eq!(opts.modify, Some(0.5));
        assert!(opts.facts_only);
        assert_eq!(opts.hop_limit, Some(4));
        assert_eq!(opts.eval_mode, EvalMode::Naive);
    }

    #[test]
    fn eval_mode_defaults_to_auto_and_rejects_junk() {
        let opts = parse_args(&args(&["p.pl"])).unwrap();
        assert_eq!(opts.eval_mode, EvalMode::Auto);
        let opts = parse_args(&args(&["p.pl", "--eval-mode", "demand"])).unwrap();
        assert_eq!(opts.eval_mode, EvalMode::Demand);
        let err = parse_args(&args(&["p.pl", "--eval-mode", "magic"])).unwrap_err();
        assert!(err.contains("unknown eval mode"), "{err}");
    }

    #[test]
    fn run_answers_in_every_eval_mode() {
        let dir = std::env::temp_dir().join("p3_cli_eval_mode_test");
        std::fs::create_dir_all(&dir).unwrap();
        let program = dir.join("trust.pl");
        std::fs::write(
            &program,
            "r1 1.0: trustPath(P1,P2) :- trust(P1,P2).
             r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1 != P3.
             t1 0.9: trust(1,2).
             t2 0.8: trust(2,3).",
        )
        .unwrap();
        for mode in ["auto", "naive", "demand"] {
            let opts = parse_args(&args(&[
                program.to_str().unwrap(),
                "--query",
                "trustPath(1,3)",
                "--eval-mode",
                mode,
            ]))
            .unwrap();
            run(&opts).unwrap_or_else(|e| panic!("{mode}: {e}"));
        }
    }

    #[test]
    fn influence_defaults_to_ten() {
        let opts = parse_args(&args(&["p.pl", "--influence", "--explain"])).unwrap();
        assert_eq!(opts.influence, Some(10));
        assert!(opts.explain);
    }

    #[test]
    fn missing_program_is_an_error() {
        assert!(parse_args(&args(&["--query", "p(a)"])).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse_args(&args(&["p.pl", "--frobnicate"])).unwrap_err();
        assert!(err.contains("unknown option"));
    }

    #[test]
    fn run_executes_all_queries_end_to_end() {
        let dir = std::env::temp_dir().join("p3_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let program = dir.join("acq.pl");
        std::fs::write(
            &program,
            r#"r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
               t1 1.0: live("Steve","DC").
               t2 1.0: live("Elena","DC")."#,
        )
        .unwrap();
        let dot = dir.join("out.dot");
        let opts = parse_args(&args(&[
            program.to_str().unwrap(),
            "--query",
            r#"know("Steve","Elena")"#,
            "--explain",
            "--stats",
            "--derivation",
            "0.01",
            "--influence",
            "3",
            "--modify",
            "0.9",
            "--dot",
            dot.to_str().unwrap(),
            "--samples",
            "20000",
        ]))
        .unwrap();
        run(&opts).unwrap();
        let rendered = std::fs::read_to_string(&dot).unwrap();
        assert!(rendered.starts_with("digraph"));
    }

    #[test]
    fn trace_out_writes_chrome_trace_json() {
        let dir = std::env::temp_dir().join("p3_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let program = dir.join("t.pl");
        std::fs::write(
            &program,
            r#"r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
               t1 1.0: live("Steve","DC").
               t2 1.0: live("Elena","DC")."#,
        )
        .unwrap();
        let trace = dir.join("trace.json");
        let opts = parse_args(&args(&[
            program.to_str().unwrap(),
            "--query",
            r#"know("Steve","Elena")"#,
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        run(&opts).unwrap();
        let json = std::fs::read_to_string(&trace).unwrap();
        assert!(json.starts_with(r#"{"traceEvents":["#), "{json}");
        assert!(json.contains(r#""name":"datalog.run""#), "{json}");
    }

    #[test]
    fn run_reports_missing_file() {
        let opts = parse_args(&args(&["/definitely/not/a/file.pl", "--stats"])).unwrap();
        let err = run(&opts).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn lint_args_parse_flags_and_paths() {
        let opts = parse_lint_args(&args(&["a.pl", "b.pl", "--json", "--workloads", "3"])).unwrap();
        assert_eq!(opts.paths, vec!["a.pl", "b.pl"]);
        assert!(opts.json);
        assert_eq!(opts.workloads, 3);
        assert!(parse_lint_args(&args(&[])).is_err());
        assert!(parse_lint_args(&args(&["--frobnicate"])).is_err());
    }

    #[test]
    fn lint_reports_findings_and_exit_status() {
        let dir = std::env::temp_dir().join("p3_cli_lint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.pl");
        std::fs::write(&bad, "f(X).\n").unwrap();
        let good = dir.join("good.pl");
        std::fs::write(&good, "t1 0.5: p(a).\nr1 0.9: q(X) :- p(X).\n").unwrap();

        let opts = parse_lint_args(&args(&[bad.to_str().unwrap()])).unwrap();
        let (out, clean) = run_lint(&opts).unwrap();
        assert!(!clean);
        assert!(out.contains("error[P3102]"), "{out}");
        assert!(out.contains("bad.pl:1:"), "{out}");

        let opts = parse_lint_args(&args(&[good.to_str().unwrap()])).unwrap();
        let (out, clean) = run_lint(&opts).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("clean"), "{out}");

        let opts = parse_lint_args(&args(&[bad.to_str().unwrap(), "--json"])).unwrap();
        let (out, clean) = run_lint(&opts).unwrap();
        assert!(!clean);
        assert!(out.contains("\"clean\":false"), "{out}");
        assert!(out.contains("\"code\":\"P3102\""), "{out}");
    }

    #[test]
    fn lint_covers_generated_workloads() {
        let opts = parse_lint_args(&args(&["--workloads", "3"])).unwrap();
        let (out, clean) = run_lint(&opts).unwrap();
        assert!(clean, "generated workloads must lint clean:\n{out}");
        assert!(out.contains("workload(seed=0)"), "{out}");
    }

    #[test]
    fn explain_args_parse_and_validate() {
        let opts = parse_explain_args(&args(&["p.pl", "--query", "p(a)", "--eval-mode", "naive"]))
            .unwrap();
        assert_eq!(opts.program_path, "p.pl");
        assert_eq!(opts.query, "p(a)");
        assert_eq!(opts.eval_mode, EvalMode::Naive);
        assert!(!opts.json && !opts.folded);
        assert!(
            parse_explain_args(&args(&["p.pl"])).is_err(),
            "query required"
        );
        assert!(parse_explain_args(&args(&["--query", "p(a)"])).is_err());
        let err = parse_explain_args(&args(&["p.pl", "--query", "p(a)", "--json", "--folded"]))
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn explain_ranks_the_recursive_trust_rule_first_in_both_modes() {
        let dir = std::env::temp_dir().join("p3_cli_explain_test");
        std::fs::create_dir_all(&dir).unwrap();
        let program = dir.join("trust.pl");
        std::fs::write(
            &program,
            "r1 1.0: trustPath(P1,P2) :- trust(P1,P2).
             r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1 != P3.
             t1 0.9: trust(1,2).
             t2 0.8: trust(2,3).
             t3 0.8: trust(3,4).
             t4 0.7: trust(4,5).
             t5 0.9: trust(5,6).",
        )
        .unwrap();
        for mode in ["naive", "demand"] {
            let opts = parse_explain_args(&args(&[
                program.to_str().unwrap(),
                "--query",
                "trustPath(1,6)",
                "--eval-mode",
                mode,
            ]))
            .unwrap();
            let out = run_explain(&opts).unwrap();
            // The recursive closure rule r2 does the join work; it must
            // lead the ranked rule table (rank 1) in both eval modes.
            let rank1 = out
                .lines()
                .find(|l| l.trim_start().starts_with("1 "))
                .unwrap_or_else(|| panic!("{mode}: no rank-1 row in:\n{out}"));
            assert!(rank1.contains("r2"), "{mode}: {rank1}\n{out}");
            assert!(rank1.contains("recursive"), "{mode}: {rank1}");
            // JSON and folded renderings agree on the leader.
            let json_opts = parse_explain_args(&args(&[
                program.to_str().unwrap(),
                "--query",
                "trustPath(1,6)",
                "--eval-mode",
                mode,
                "--json",
            ]))
            .unwrap();
            let json = run_explain(&json_opts).unwrap();
            assert!(json.contains("\"rule\":\"r2\""), "{mode}: {json}");
            let folded_opts = parse_explain_args(&args(&[
                program.to_str().unwrap(),
                "--query",
                "trustPath(1,6)",
                "--eval-mode",
                mode,
                "--folded",
            ]))
            .unwrap();
            let folded = run_explain(&folded_opts).unwrap();
            assert!(
                folded
                    .lines()
                    .any(|l| l.starts_with(&format!("p3;{mode};r2 "))),
                "{mode}: {folded}"
            );
        }
    }

    #[test]
    fn audit_args_parse_flags_and_reject_bad_keys() {
        let opts =
            parse_audit_args(&args(&["/tmp/a", "--json", "--top", "5", "--by", "tuples"])).unwrap();
        assert_eq!(opts.dir, "/tmp/a");
        assert!(opts.json);
        assert_eq!(opts.top, Some(5));
        assert_eq!(opts.by, "tuples");
        assert!(parse_audit_args(&args(&[])).is_err());
        let err = parse_audit_args(&args(&["/tmp/a", "--by", "bogus"])).unwrap_err();
        assert!(err.contains("unknown --by key"), "{err}");
    }

    #[test]
    fn audit_reads_a_log_dir_offline() {
        let dir = std::env::temp_dir().join("p3_cli_audit_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let log = p3::audit::AuditLog::open(p3::audit::AuditConfig::new(&dir)).unwrap();
        for (class, total_us) in [("probability", 900u64), ("explanation", 40)] {
            log.append(p3::audit::AuditRecord {
                class: class.to_string(),
                total_us,
                ..Default::default()
            })
            .unwrap();
        }
        drop(log);

        let opts = parse_audit_args(&args(&[dir.to_str().unwrap()])).unwrap();
        let (out, clean) = run_audit(&opts).unwrap();
        assert!(clean, "{out}");
        assert!(out.contains("2 record(s)"), "{out}");
        assert!(out.contains("probability"), "{out}");

        // --top 1 --by latency keeps only the slow probability record.
        let opts =
            parse_audit_args(&args(&[dir.to_str().unwrap(), "--json", "--top", "1"])).unwrap();
        let (out, _) = run_audit(&opts).unwrap();
        assert_eq!(out.lines().count(), 1, "{out}");
        assert!(out.contains("\"class\":\"probability\""), "{out}");
    }

    #[test]
    fn prob_method_parses_all_variants() {
        for (name, want_exact) in [
            ("exact", true),
            ("bdd", false),
            ("mc", false),
            ("kl", false),
            ("pmc", false),
        ] {
            let opts = parse_args(&args(&["p.pl", "--prob", name])).unwrap();
            let m = prob_method(&opts).unwrap();
            assert_eq!(matches!(m, ProbMethod::Exact), want_exact, "{name}");
        }
        let opts = parse_args(&args(&["p.pl", "--prob", "nope"])).unwrap();
        assert!(prob_method(&opts).is_err());
    }
}
