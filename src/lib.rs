//! # P3 — Provenance for Probabilistic Logic Programs
//!
//! A from-scratch Rust reproduction of *"Provenance for Probabilistic Logic
//! Programs"* (EDBT 2020). This facade crate re-exports the whole stack:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`datalog`] | `p3-datalog` | ProbLog-like language, parser, semi-naive engine, possible-worlds oracle, stratified negation |
//! | [`prob`] | `p3-prob` | DNF provenance polynomials, exact (Shannon/BDD) and Monte-Carlo probability |
//! | [`provenance`] | `p3-provenance` | graph capture, ExSPAN-style rewriting, cycle-eliminating extraction, SLD resolution |
//! | [`lint`] | `p3-lint` | multi-pass static analysis with `P3xxx` diagnostics |
//! | [`analyze`] | `p3-analyze` | abstract-interpretation cost & cardinality prediction, eval-mode recommendation |
//! | [`core`] | `p3-core` | the [`core::P3`] system facade and the four query types |
//! | [`workloads`] | `p3-workloads` | Acquaintance, synthetic Bitcoin-OTC trust network, synthetic VQA |
//! | [`obs`] | `p3-obs` | leveled logging, Prometheus-style metrics, hierarchical spans |
//!
//! Start with [`core::P3`]:
//!
//! ```
//! use p3::core::{P3, ProbMethod};
//!
//! let system = P3::from_source(r#"
//!     r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
//!     t1 1.0: live("Steve","DC").
//!     t2 1.0: live("Elena","DC").
//! "#).unwrap();
//! let p = system.probability(r#"know("Steve","Elena")"#, ProbMethod::Exact).unwrap();
//! assert!((p - 0.8).abs() < 1e-12);
//! ```
//!
//! See `README.md` for the architecture, `docs/TUTORIAL.md` for a guided
//! tour, `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured evaluation.

#![warn(missing_docs)]

pub use p3_analyze as analyze;
pub use p3_audit as audit;
pub use p3_core as core;
pub use p3_datalog as datalog;
pub use p3_lint as lint;
pub use p3_obs as obs;
pub use p3_prob as prob;
pub use p3_provenance as provenance;
pub use p3_workloads as workloads;
