//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-target API surface this workspace uses
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`/`criterion_main!`)
//! with a simple warmup-then-sample timing loop. Results are printed as
//! mean/median per-iteration times; there is no statistical analysis,
//! plotting, or baseline comparison.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies a benchmark within a group, e.g. `BenchmarkId::new("extract", n)`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs the routine repeatedly and
/// records the total elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like `iter`, but times only what `routine` itself measures via the
    /// returned duration. Provided for API parity; rarely used here.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_count: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_count: 20,
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1500),
        }
    }
}

/// The benchmark manager. Created via `Criterion::default()` (typically by
/// the `criterion_group!` macro).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_count = n.max(2);
        self
    }

    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.settings.measure = dur;
        self
    }

    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.settings.warm_up = dur;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            settings,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.settings, f);
        self
    }

    /// criterion's post-run hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_count = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.measure = dur;
        self
    }

    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.warm_up = dur;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.settings, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.settings, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, settings: Settings, mut f: F) {
    // Warmup: run single iterations until the warmup budget is spent, using
    // the observed cost to size the measurement batches.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        let spent = warm_start.elapsed();
        if spent >= settings.warm_up || warm_iters >= 10_000 {
            per_iter = spent / warm_iters.max(1) as u32;
            break;
        }
    }
    if per_iter.is_zero() {
        per_iter = Duration::from_nanos(1);
    }

    // Size each sample so the whole measurement fits the time budget.
    let samples = settings.sample_count as u64;
    let budget_per_sample = settings.measure / samples.max(1) as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "bench: {id:<55} median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        samples,
        iters_per_sample
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Defines a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $(
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("smoke");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
