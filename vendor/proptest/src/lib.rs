//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest's API its property tests use: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and regex-pattern strategies,
//! [`collection::vec`], the [`proptest!`] macro with `proptest_config`, and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Semantics: each test runs `cases` random inputs (deterministically seeded
//! per test name, so failures reproduce). Shrinking is not implemented —
//! a failing case panics with the assertion message directly.

pub mod test_runner {
    //! Configuration and the per-test random source.

    pub use rand::rngs::SmallRng as TestRng;

    /// Runner configuration (the `cases` knob only).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases each test must execute.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Debug)]
    pub struct Rejected;

    /// Seeds the RNG for a named test, deterministically.
    pub fn rng_for(test_name: &str) -> TestRng {
        use rand::SeedableRng;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ 0x9e37_79b9_7f4a_7c15)
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::string::Pattern;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// String-literal strategies: the pattern is a simplified regex
    /// (character classes, `\PC`, `{m,n}` repetitions) and generates
    /// matching strings.
    impl Strategy for &str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            Pattern::parse(self).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Generates `Vec`s of values from an element strategy. Built by
    /// [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) min: usize,
        pub(crate) max: usize,
        pub(crate) _marker: PhantomData<S>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                rng.random_range(self.min..=self.max)
            };
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::VecStrategy;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Anything accepted as a size specification by [`vec`].
    pub trait IntoSizeRange {
        /// The inclusive `(min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// A strategy generating vectors whose elements come from `elem` and
    /// whose length falls in `size`.
    pub fn vec<S>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy {
            elem,
            min,
            max,
            _marker: PhantomData,
        }
    }
}

pub mod string {
    //! The simplified regex-pattern string generator.

    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// One pattern atom: a set of candidate characters plus a repetition
    /// count range.
    enum CharSet {
        /// `\PC`: any printable (non-control) character.
        Printable,
        /// An explicit choice list from a `[...]` class or a literal.
        Choices(Vec<char>),
    }

    struct Atom {
        set: CharSet,
        min: u32,
        max: u32,
    }

    /// A parsed pattern.
    pub struct Pattern {
        atoms: Vec<Atom>,
    }

    impl Pattern {
        /// Parses the supported pattern subset: literals, `[...]` classes
        /// with ranges and escapes, `\PC`, and `{m,n}` / `{n}` repetitions.
        pub fn parse(src: &str) -> Pattern {
            let mut chars = src.chars().peekable();
            let mut atoms = Vec::new();
            while let Some(c) = chars.next() {
                let set = match c {
                    '\\' => match chars.next() {
                        Some('P') => {
                            // `\PC`: consume the category letter.
                            let _ = chars.next();
                            CharSet::Printable
                        }
                        Some(esc) => CharSet::Choices(vec![esc]),
                        None => CharSet::Choices(vec!['\\']),
                    },
                    '[' => {
                        let mut choices = Vec::new();
                        let mut prev: Option<char> = None;
                        loop {
                            match chars.next() {
                                None | Some(']') => break,
                                Some('\\') => {
                                    if let Some(esc) = chars.next() {
                                        choices.push(esc);
                                        prev = Some(esc);
                                    }
                                }
                                Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                                    let lo = prev.take().expect("checked") as u32;
                                    let hi = chars.next().expect("checked") as u32;
                                    for code in lo..=hi {
                                        if let Some(ch) = char::from_u32(code) {
                                            choices.push(ch);
                                        }
                                    }
                                }
                                Some(other) => {
                                    choices.push(other);
                                    prev = Some(other);
                                }
                            }
                        }
                        if choices.is_empty() {
                            choices.push('x');
                        }
                        CharSet::Choices(choices)
                    }
                    '.' => CharSet::Printable,
                    other => CharSet::Choices(vec![other]),
                };
                // Optional repetition suffix.
                let (min, max) = if chars.peek() == Some(&'{') {
                    chars.next();
                    let mut bounds = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        bounds.push(c);
                    }
                    match bounds.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().unwrap_or(0),
                            hi.trim().parse().unwrap_or(8),
                        ),
                        None => {
                            let n = bounds.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                };
                atoms.push(Atom { set, min, max });
            }
            Pattern { atoms }
        }

        /// Generates one matching string.
        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let count = if atom.min == atom.max {
                    atom.min
                } else {
                    rng.random_range(atom.min..=atom.max)
                };
                for _ in 0..count {
                    match &atom.set {
                        CharSet::Printable => out.push(random_printable(rng)),
                        CharSet::Choices(choices) => {
                            out.push(choices[rng.random_range(0..choices.len())]);
                        }
                    }
                }
            }
            out
        }
    }

    fn random_printable(rng: &mut TestRng) -> char {
        // Mostly ASCII printable, with an occasional multi-byte character to
        // exercise UTF-8 handling.
        const EXOTIC: &[char] = &['é', 'λ', 'Ж', '中', '‿', '🦀'];
        if rng.random_bool(0.95) {
            char::from_u32(rng.random_range(0x20u32..0x7F)).expect("ascii printable")
        } else {
            EXOTIC[rng.random_range(0..EXOTIC.len())]
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Supports the subset:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(pattern in strategy, other in strategy2) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategies = ($($strat,)+);
                let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1024);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "too many rejected cases in {} ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases,
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::new_value(&strategies, &mut rng);
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                        (|| { { $body } ::core::result::Result::Ok(()) })();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generator_matches_classes() {
        let mut rng = crate::test_runner::rng_for("pattern_test");
        let pat = crate::string::Pattern::parse("[a-c]{2,4}");
        for _ in 0..50 {
            let s = pat.generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        let pat = crate::string::Pattern::parse("x{3}");
        assert_eq!(pat.generate(&mut rng), "xxx");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_generate_in_bounds(n in 3usize..10, f in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0, "only even values reach here: {n}");
        }

        #[test]
        fn flat_map_and_vec_compose(
            (len, values) in (1usize..5).prop_flat_map(|len| {
                (crate::strategy::Just(len), crate::collection::vec(0u32..10, len))
            }),
        ) {
            prop_assert_eq!(values.len(), len);
        }
    }
}
