//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::thread::scope` API surface this workspace uses,
//! implemented on top of `std::thread::scope` (stable since Rust 1.63).
//! Worker closures receive a zero-sized token in place of crossbeam's
//! re-entrant `&Scope` argument; nested spawning from inside a worker is not
//! supported (nothing in this workspace nests).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// The token passed to worker closures. Crossbeam passes `&Scope` so
    /// workers can spawn siblings; this stand-in does not support that, and
    /// the token is inert.
    #[derive(Debug, Clone, Copy)]
    pub struct WorkerScope;

    static WORKER_SCOPE: WorkerScope = WorkerScope;

    /// A scope handle, wrapping [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload if it panicked).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument mirrors
        /// crossbeam's `&Scope` parameter and is ignored here.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&WorkerScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&WORKER_SCOPE)),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the caller.
    ///
    /// Mirrors crossbeam's signature: the scope's result is wrapped in
    /// `Result`, with `Err` carrying the panic payload if the closure (or an
    /// unjoined thread) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| -> u32 { panic!("worker boom") });
            h.join().expect("propagate");
        });
        assert!(result.is_err());
    }
}
