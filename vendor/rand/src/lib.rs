//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of the rand 0.10 API it actually uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`RngExt`] extension
//! methods `random`, `random_range` and `random_bool`.
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng` uses
//! on 64-bit targets) with SplitMix64 seed expansion, so streams are of high
//! quality and deterministic per seed. Distributions intentionally favour
//! simplicity over perfect uniformity at the extreme ends of integer ranges;
//! everything in this workspace draws from small ranges where the modulo
//! bias is far below any tolerance the tests use.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the subset the workspace needs).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types that [`RngExt::random_range`] can sample uniformly.
///
/// The blanket `SampleRange` impls below are generic over this trait, which
/// lets the compiler pin `T` from the range's element type alone — matching
/// real rand's inference behaviour (`rng.random_range(1..=10)` defaults the
/// literal to `i32`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample from empty range");
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_exclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "cannot sample from empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Extension methods mirroring rand 0.10's `Rng`.
pub trait RngExt: RngCore {
    /// A uniformly random value of `T`.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value from `range`.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Compatibility alias: rand's pre-0.9 trait name.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_floats() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x = rng.random_range(3..8usize);
            assert!((3..8).contains(&x));
            seen[x - 3] = true;
            let y = rng.random_range(1..=3u32);
            assert!((1..=3).contains(&y));
            let z = rng.random_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&z));
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
