//! Quickstart: load a ProbLog-like program, evaluate it with provenance,
//! and run all four P3 query types.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use p3::core::{
    influence_query, modification_query, sufficient_provenance, DerivationAlgo, InfluenceMethod,
    InfluenceOptions, ModificationOptions, ProbMethod, P3,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Fig 2): who may know whom.
    let p3 = P3::from_source(
        r#"
        r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
        r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
        r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
        t1 1.0: live("Steve","DC").
        t2 1.0: live("Elena","DC").
        t3 1.0: live("Mary","NYC").
        t4 0.4: like("Steve","Veggies").
        t5 0.6: like("Elena","Veggies").
        t6 1.0: know("Ben","Steve").
    "#,
    )?;
    let query = r#"know("Ben","Elena")"#;

    // 1. Explanation Query: how is the tuple derived, and how likely is it?
    let explanation = p3.explain(query)?;
    println!("--- Explanation Query ---");
    println!("derivations of {query}:\n{}", explanation.text);
    println!(
        "provenance polynomial: {}",
        p3.render_polynomial(&explanation.polynomial)
    );
    println!("success probability:   {:.5}\n", explanation.probability);

    // 2. Derivation Query: the most important derivations within ε.
    let suff = sufficient_provenance(
        &explanation.polynomial,
        p3.vars(),
        0.01,
        DerivationAlgo::NaiveGreedy,
        ProbMethod::Exact,
    );
    println!("--- Derivation Query (eps = 0.01) ---");
    println!(
        "kept {} of {} derivations: {}",
        suff.polynomial.len(),
        suff.original_len,
        p3.render_polynomial(&suff.polynomial)
    );
    println!(
        "approximate probability: {:.5} (error {:.5})\n",
        suff.probability, suff.error
    );

    // 3. Influence Query: which clauses matter most?
    let influences = influence_query(
        &explanation.polynomial,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Exact,
            top_k: Some(3),
            ..Default::default()
        },
    );
    println!("--- Influence Query (top 3) ---");
    for entry in &influences {
        println!(
            "  {:<4} influence = {:.4}",
            p3.vars().name(entry.var),
            entry.influence
        );
    }
    println!();

    // 4. Modification Query: reach P = 0.5 with minimal total change.
    let plan = modification_query(
        &explanation.polynomial,
        p3.vars(),
        0.5,
        &ModificationOptions::default(),
    );
    println!("--- Modification Query (target P = 0.5) ---");
    for step in &plan.steps {
        println!(
            "  set {} from {:.3} to {:.3}  (P becomes {:.4})",
            p3.vars().name(step.var),
            step.from,
            step.to,
            step.resulting_probability
        );
    }
    println!(
        "total cost: {:.4}; reached target: {}",
        plan.total_cost, plan.reached_target
    );
    Ok(())
}
