//! The VQA debugging narrative (§5.1): a probabilistic-logic VQA program
//! answers "barn" for a photo of a church; provenance queries locate the
//! bad similarity datum and a Modification Query computes the fix.
//!
//! ```sh
//! cargo run --example vqa_debugging
//! ```

use p3::core::{
    influence_query, modification_query, InfluenceMethod, InfluenceOptions, ModificationOptions,
    ProbMethod, P3,
};
use p3::workloads::vqa;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The church photo (Fig 6), captured as the Table 3 tuples, with the
    // buggy Word2Vec-like similarity table.
    let instance = vqa::church_image_buggy();
    let p3 = P3::from_program(instance.to_program()).expect("negation-free program");

    let p_barn = p3.probability(vqa::ANS_BARN, ProbMethod::Exact)?;
    let p_church = p3.probability(vqa::ANS_CHURCH, ProbMethod::Exact)?;
    println!("--- the bug: full answer ranking ---");
    for (_, atom, p) in p3.relation_probabilities(
        "ans",
        ProbMethod::Exact,
        p3::provenance::extract::ExtractOptions::unbounded(),
    ) {
        println!("  {atom:<22} P = {p:.4}");
    }
    println!("the photo shows a church with a cross, yet 'barn' wins");
    println!("(gap to close: {:.4})\n", p_barn - p_church);

    // Query 1A: the most important derivation of the wrong answer.
    let barn_dnf = p3.provenance(vqa::ANS_BARN)?;
    println!("--- Query 1A: why 'barn'? (most important derivation) ---");
    let suff = p3::core::sufficient_provenance(
        &barn_dnf,
        p3.vars(),
        p_barn * 0.5,
        p3::core::DerivationAlgo::NaiveGreedy,
        ProbMethod::Exact,
    );
    println!("λS = {}\n", p3.render_polynomial(&suff.polynomial));

    // Query 1B/1C: influence of the sim literals unique to 'church'.
    let church_dnf = p3.provenance(vqa::ANS_CHURCH)?;
    let barn_vars = barn_dnf.vars();
    let unique: Vec<_> = church_dnf
        .vars()
        .into_iter()
        .filter(|v| barn_vars.binary_search(v).is_err())
        .filter(|&v| p3.vars().name(v).starts_with("sim_"))
        .collect();
    println!("--- Table 4: unique influential sim tuples for 'church' ---");
    let ranked = influence_query(
        &church_dnf,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Exact,
            restrict_to: Some(unique),
            top_k: Some(3),
            ..Default::default()
        },
    );
    for e in &ranked {
        println!(
            "  {:<22} influence = {:.4}",
            p3.vars().name(e.var),
            e.influence
        );
    }
    println!();

    // The fix: raise sim(church,cross) until 'church' matches 'barn'.
    let label = instance.sim_label("church", "cross").expect("planted sim");
    let var = p3::provenance::vars::var_of(p3.program().clause_by_label(&label).unwrap());
    let plan = modification_query(
        &church_dnf,
        p3.vars(),
        p_barn,
        &ModificationOptions {
            modifiable: Some(vec![var]),
            ..Default::default()
        },
    );
    println!("--- Modification Query: fix sim(church,cross) ---");
    for s in &plan.steps {
        println!(
            "  {} : {:.2} -> {:.2}  (Δ = +{:.2}; paper: +0.42 to 0.51)",
            p3.vars().name(s.var),
            s.from,
            s.to,
            s.to - s.from
        );
    }

    // Verify on the fixed instance.
    let fixed =
        P3::from_program(vqa::church_image_fixed().to_program()).expect("negation-free program");
    let p_barn2 = fixed.probability(vqa::ANS_BARN, ProbMethod::Exact)?;
    let p_church2 = fixed.probability(vqa::ANS_CHURCH, ProbMethod::Exact)?;
    println!("\n--- after the fix ---");
    println!("P[ans = barn]   = {p_barn2:.4}");
    println!("P[ans = church] = {p_church2:.4}");
    if p_church2 > p_barn2 {
        println!("'church' now wins — bug fixed.");
    }
    Ok(())
}
