% The Acquaintance running example (Fig 2 of "Provenance for Probabilistic
% Logic Programs", EDBT 2020).
%
% Try:
%   p3 lint examples/acquaintance.pl
%   p3 query examples/acquaintance.pl 'know("Ben","Elena")'

r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.

t1 1.0: live("Steve","DC").
t2 1.0: live("Elena","DC").
t3 1.0: live("Mary","NYC").
t4 0.4: like("Steve","Veggies").
t5 0.6: like("Elena","Veggies").
t6 1.0: know("Ben","Steve").
