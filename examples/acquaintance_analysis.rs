//! The full §2–§4 walkthrough on the Acquaintance example: provenance
//! graph (Fig 3, as Graphviz), cycle elimination at work, all four query
//! types, and a cross-check against the brute-force possible-worlds
//! semantics.
//!
//! ```sh
//! cargo run --example acquaintance_analysis
//! ```

use p3::core::{ProbMethod, P3};
use p3::datalog::worlds;
use p3::prob::McConfig;
use p3::workloads::acquaintance;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p3 = P3::from_source(acquaintance::SOURCE)?;
    let query = acquaintance::QUERY;

    println!("program:\n{}", p3.program().to_source());

    // The provenance graph of Fig 3, in Graphviz dot syntax.
    let explanation = p3.explain(query)?;
    println!("--- Fig 3: provenance graph (render with `dot -Tpng`) ---");
    println!("{}", explanation.dot);

    // Probability by four independent routes. The possible-worlds oracle is
    // the semantics itself (Eq. 1-4); the others go through provenance.
    println!("--- success probability of {query}, four ways ---");
    let oracle = worlds::success_probability_str(p3.program(), query)?;
    println!("  possible-worlds enumeration : {oracle:.5}");
    let exact = p3.probability(query, ProbMethod::Exact)?;
    println!("  provenance + Shannon        : {exact:.5}");
    let bdd = p3.probability(query, ProbMethod::Bdd)?;
    println!("  provenance + BDD WMC        : {bdd:.5}");
    let mc = p3.probability(
        query,
        ProbMethod::MonteCarlo(McConfig {
            samples: 200_000,
            seed: 1,
        }),
    )?;
    println!("  provenance + Monte-Carlo    : {mc:.5}   (paper reports ~0.18)");
    assert!(
        (oracle - exact).abs() < 1e-9,
        "provenance must preserve the semantics"
    );

    // Cycle elimination: the recursive rule r3 creates cyclic derivations
    // (know(Ben,Elena) via know(Ben,Steve)·know(Steve,Elena), where longer
    // chains would revisit tuples); the extracted polynomial stays finite.
    println!("\n--- provenance polynomial (cycles eliminated) ---");
    println!("λ = {}", p3.render_polynomial(&explanation.polynomial));
    println!(
        "({} derivations, {} distinct literals)",
        explanation.polynomial.len(),
        explanation.polynomial.vars().len()
    );

    // Intermediate tuples are queryable too.
    println!("\n--- intermediate tuple ---");
    let intermediate = r#"know("Steve","Elena")"#;
    let p = p3.probability(intermediate, ProbMethod::Exact)?;
    println!("P[{intermediate}] = {p:.5}");

    Ok(())
}
