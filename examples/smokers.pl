% A small social-influence program in the style of the classic "friends &
% smokers" ProbLog example: smoking spreads along (probabilistic) friendship
% edges, with a per-person stress prior.
%
% Try:
%   p3 lint examples/smokers.pl
%   p3 query examples/smokers.pl 'smokes("carol")'

r1 0.3: smokes(X) :- stress(X).
r2 0.2: smokes(Y) :- friend(X,Y), smokes(X).

t1 0.8: stress("alice").
t2 0.4: stress("bob").
t3 0.9: friend("alice","bob").
t4 0.7: friend("bob","carol").
t5 0.5: friend("carol","alice").
