% The Trust-network case study (Fig 7): transitive trust paths with a
% mutual-trust head rule, over the six-edge excerpt used in §6.
%
% Try:
%   p3 lint examples/trust.pl
%   p3 query examples/trust.pl 'mutualTrustPath(1,2)'

r1 1.0: trustPath(P1,P2) :- trust(P1,P2).
r2 1.0: trustPath(P1,P3) :- trust(P1,P2), trustPath(P2,P3), P1 != P3.
r3 0.8: mutualTrustPath(P1,P2) :- trustPath(P1,P2), trustPath(P2,P1).

t1 0.9: trust(1,2).
t2 0.9: trust(2,1).
t3 0.65: trust(1,13).
t4 0.75: trust(2,6).
t5 0.7: trust(6,2).
t6 0.6: trust(13,2).
