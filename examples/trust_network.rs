//! The Mutual Trust case study (§5.2): the Fig 8 scenario plus a synthetic
//! Bitcoin-OTC-like sample, with influence and modification queries over
//! `mutualTrustPath(1,6)`.
//!
//! ```sh
//! cargo run --release --example trust_network
//! ```

use p3::core::{
    influence_query, modification_query, InfluenceMethod, InfluenceOptions, ModificationOptions,
    ProbMethod, Strategy, P3,
};
use p3::workloads::trust;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The §5.2 case study: Fig 8 / Tables 5-7 ---
    let p3 = P3::from_source(&trust::case_study_source())?;
    let query = trust::CASE_STUDY_QUERY;

    println!("--- Query 2A: derivations of {query} ---");
    let explanation = p3.explain(query)?;
    println!("{}", explanation.text);
    println!(
        "P[{query}] = {:.4} (paper: 0.3524 by Monte-Carlo)\n",
        explanation.probability
    );

    println!("--- Query 2B: most influential trust tuples ---");
    let ranked = influence_query(
        &explanation.polynomial,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Exact,
            ..Default::default()
        },
    );
    for entry in ranked.iter().take(4) {
        let clause = p3
            .program()
            .clause(p3::provenance::vars::clause_of(entry.var));
        println!(
            "  {} ({}): influence {:.4}",
            clause.head.display(p3.program().symbols()),
            p3.vars().name(entry.var),
            entry.influence
        );
    }
    println!("  (paper: trust(6,2)=0.51, trust(2,6)=0.48)\n");

    println!("--- Query 2C: raise P to 0.7 with minimal change ---");
    let base_tuples: Vec<_> = p3
        .program()
        .iter()
        .filter(|(_, c)| c.is_fact())
        .map(|(id, _)| p3::provenance::vars::var_of(id))
        .collect();
    let greedy = modification_query(
        &explanation.polynomial,
        p3.vars(),
        0.7,
        &ModificationOptions {
            modifiable: Some(base_tuples.clone()),
            ..Default::default()
        },
    );
    for (i, s) in greedy.steps.iter().enumerate() {
        let clause = p3.program().clause(p3::provenance::vars::clause_of(s.var));
        println!(
            "  step {}: {} {:.2} -> {:.2}   (P = {:.4})",
            i + 1,
            clause.head.display(p3.program().symbols()),
            s.from,
            s.to,
            s.resulting_probability
        );
    }
    println!(
        "  greedy total change = {:.2} (paper Table 6: 0.58)",
        greedy.total_cost
    );

    let random = modification_query(
        &explanation.polynomial,
        p3.vars(),
        0.7,
        &ModificationOptions {
            modifiable: Some(base_tuples),
            strategy: Strategy::Random { seed: 4 },
            ..Default::default()
        },
    );
    println!(
        "  random-baseline total change = {:.2} (paper Table 7: 1.36)\n",
        random.total_cost
    );

    // --- A synthetic OTC-like sample, per §6's methodology ---
    println!("--- synthetic Bitcoin-OTC-like sample (100 nodes) ---");
    let net = trust::generate(trust::NetworkConfig::default());
    let sample = net.sample_bfs(100, 7);
    println!(
        "sampled {} nodes / {} edges",
        sample.num_nodes,
        sample.edge_count()
    );
    let p3s = P3::from_program(sample.to_program()).expect("negation-free program");
    let mutual = p3s
        .program()
        .symbols()
        .get("mutualTrustPath")
        .and_then(|pred| p3s.database().relation(pred))
        .map(|r| r.len())
        .unwrap_or(0);
    println!(
        "derived {} mutualTrustPath tuples in {} total tuples",
        mutual,
        p3s.database().len()
    );

    if let Some(pred) = p3s.program().symbols().get("mutualTrustPath") {
        if let Some(rel) = p3s.database().relation(pred) {
            if let Some(&t) = rel.tuples().first() {
                let extractor = p3s.extractor();
                let dnf = extractor.polynomial(
                    t,
                    p3::provenance::extract::ExtractOptions::with_max_depth(5),
                );
                let shown = p3s.database().display_tuple(t, p3s.program().symbols());
                let p = ProbMethod::MonteCarlo(p3::prob::McConfig::default())
                    .probability(&dnf, p3s.vars());
                println!(
                    "example: {shown} has {} hop-limited derivations, P ≈ {p:.4}",
                    dnf.len()
                );
            }
        }
    }
    Ok(())
}
