//! The engine-level stratified-negation extension (the paper's §8 future
//! work): evaluate programs with `\+`, compute success probabilities via
//! the possible-worlds semantics, and see why the provenance facade
//! declines them.
//!
//! ```sh
//! cargo run --example stratified_negation
//! ```

use p3::core::{P3Error, P3};
use p3::datalog::engine::Engine;
use p3::datalog::worlds;
use p3::datalog::Program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Which hosts are exposed? A host is *exposed* when it is reachable
    // from the internet and no firewall rule covers it. Reachability is
    // probabilistic (flaky links), firewall coverage is data.
    let src = r#"
        r1 1.0: reach(X) :- entry(X).
        r2 1.0: reach(Y) :- reach(X), link(X,Y).
        r3 1.0: exposed(X) :- reach(X), \+ firewalled(X).
        t1 1.0: entry(gateway).
        l1 0.9: link(gateway,web).
        l2 0.7: link(web,db).
        l3 0.4: link(gateway,db).
        f1 1.0: firewalled(db).
    "#;
    let program = Program::parse(src)?;
    println!(
        "strata: {} (negation forces two evaluation passes)",
        program.num_strata()
    );

    // Deterministic view: evaluate with every clause present.
    let db = Engine::new(&program).run_plain();
    let exposed = program.symbols().get("exposed").unwrap();
    println!("\nexposed hosts (full program):");
    for &t in db.relation(exposed).unwrap().tuples() {
        println!("  {}", db.display_tuple(t, program.symbols()));
    }

    // Probabilistic view: the possible-worlds semantics still applies —
    // negation is evaluated per world.
    println!("\nsuccess probabilities (possible-worlds enumeration):");
    for q in [
        "exposed(gateway)",
        "exposed(web)",
        "exposed(db)",
        "reach(db)",
    ] {
        let p = worlds::success_probability_str(&program, q)?;
        println!("  P[{q}] = {p:.4}");
    }
    // exposed(db) is 0: db is always firewalled. reach(db) is
    // 1 − (1−0.9·0.7)(1−0.4) = 0.778.

    // The provenance model is monotone, so P3 refuses — with a clear error.
    match P3::from_source(src) {
        Err(P3Error::UnsupportedNegation) => {
            println!("\nP3 provenance queries correctly decline this program:");
            println!("  {}", P3Error::UnsupportedNegation);
        }
        Err(e) => panic!("expected UnsupportedNegation, got {e}"),
        Ok(_) => panic!("expected UnsupportedNegation, got a system"),
    }

    // Unstratified negation is rejected at validation time.
    let paradox = r"r1 1.0: win(X) :- move(X,Y), \+ win(Y). move(a,b). move(b,a).";
    match Program::parse(paradox) {
        Err(e) => println!("\nunstratified program rejected: {e}"),
        Ok(_) => panic!("the win/move paradox must not validate"),
    }
    Ok(())
}
