//! Explain is observation-only: answering the same queries with per-rule
//! stat collection on (and `explain` called per query) must intern the
//! *same* DNF sequence — identical `DnfId`s, since hash-consing makes ids
//! a transcript of evaluation order — and produce bit-identical
//! probabilities, in both eval modes. Any write path from the EXPLAIN
//! plane into evaluation would shift an id or a bit and fail here.

use p3::core::{EvalMode, ProbMethod, SessionOptions, P3};
use p3::datalog::engine::set_rule_stat_collection;
use p3::prob::DnfId;
use p3::provenance::extract::ExtractOptions;
use p3::workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serialises access to the process-global collection toggle across this
/// binary's tests; `.unwrap_or_else` keeps going past another test's panic.
static TOGGLE: Mutex<()> = Mutex::new(());

/// Answers every query through a fresh system, returning the interned id
/// and the probability's raw bits. With `explain` set, stat collection is
/// on and `QuerySession::explain` runs after each query — the observation
/// path under test.
fn transcript(
    program: &p3::datalog::program::Program,
    queries: &[String],
    mode: EvalMode,
    explain: bool,
) -> Vec<(DnfId, u64)> {
    set_rule_stat_collection(explain);
    let p3 = P3::from_program(program.clone()).expect("negation-free program");
    let session = p3.session_with(SessionOptions {
        eval_mode: mode,
        ..Default::default()
    });
    let mut out = Vec::new();
    for query in queries {
        let id = session
            .provenance_id_with(query, ExtractOptions::unbounded())
            .unwrap();
        let p = session.probability_of(id, ProbMethod::Exact);
        if explain {
            let explained = session.explain(query).expect("explainable query");
            assert_eq!(explained.mode(), mode.resolve(program).as_str());
        }
        out.push((id, p.to_bits()));
    }
    out
}

fn assert_explain_is_observation_only(config: RandomConfig) {
    let seed = config.seed;
    let program = generate(config);
    let queries = all_derived_queries(&program);
    if queries.is_empty() {
        return;
    }
    let _guard = TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    for mode in [EvalMode::Naive, EvalMode::Demand] {
        let plain = transcript(&program, &queries, mode, false);
        let explained = transcript(&program, &queries, mode, true);
        set_rule_stat_collection(true);
        assert_eq!(
            plain,
            explained,
            "seed {seed}, {mode:?}: explain perturbed evaluation\nprogram:\n{}",
            program.to_source()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn explain_never_perturbs_ids_or_probabilities(seed in 0u64..400) {
        assert_explain_is_observation_only(RandomConfig { seed, ..Default::default() });
    }

    #[test]
    fn explain_never_perturbs_recursive_workloads(seed in 0u64..200) {
        assert_explain_is_observation_only(RandomConfig {
            seed: seed.wrapping_mul(6007),
            recursion_bias: 0.9,
            rules: 5,
            facts: 7,
            ..Default::default()
        });
    }
}
