//! End-to-end reproduction of the paper's worked examples (§2–§4) on the
//! Acquaintance program.

use p3::core::{
    influence_query, modification_query, sufficient_provenance, DerivationAlgo, InfluenceMethod,
    InfluenceOptions, ModificationOptions, ProbMethod, P3,
};
use p3::prob::McConfig;
use p3::workloads::acquaintance;

fn system() -> P3 {
    P3::from_source(acquaintance::SOURCE).expect("Fig 2 program loads")
}

#[test]
fn query1_explanation_has_two_derivations_sharing_paths() {
    let p3 = system();
    let exp = p3.explain(acquaintance::QUERY).unwrap();
    // Fig 3: two derivations; both route through r3 and know(Ben,Steve).
    assert_eq!(exp.num_derivations, 2);
    let r3 = p3
        .vars()
        .ids()
        .find(|&v| p3.vars().name(v) == "r3")
        .unwrap();
    let t6 = p3
        .vars()
        .ids()
        .find(|&v| p3.vars().name(v) == "t6")
        .unwrap();
    for m in exp.polynomial.monomials() {
        assert!(m.contains(r3), "every derivation uses r3");
        assert!(m.contains(t6), "every derivation uses know(Ben,Steve)");
    }
    // The success probability (paper: ~0.18 by MC; exact: 0.16384).
    assert!((exp.probability - 0.16384).abs() < 1e-9);
    // Monte-Carlo agrees within sampling error.
    let mc = p3
        .probability(
            acquaintance::QUERY,
            ProbMethod::MonteCarlo(McConfig {
                samples: 300_000,
                seed: 17,
            }),
        )
        .unwrap();
    assert!((mc - 0.16384).abs() < 0.005, "mc={mc}");
}

#[test]
fn query2_derivation_query_eps_behaviour() {
    let p3 = system();
    let dnf = p3.provenance(acquaintance::QUERY).unwrap();
    // ε = 0.001: both derivations must stay (removing either changes P by
    // more than 0.001).
    let tight = sufficient_provenance(
        &dnf,
        p3.vars(),
        0.001,
        DerivationAlgo::NaiveGreedy,
        ProbMethod::Exact,
    );
    assert_eq!(tight.polynomial.len(), 2);
    // ε = 0.01: the like-Veggies derivation is dropped; the live-in-DC
    // derivation (via r1) remains.
    let loose = sufficient_provenance(
        &dnf,
        p3.vars(),
        0.01,
        DerivationAlgo::NaiveGreedy,
        ProbMethod::Exact,
    );
    assert_eq!(loose.polynomial.len(), 1);
    let r1 = p3
        .vars()
        .ids()
        .find(|&v| p3.vars().name(v) == "r1")
        .unwrap();
    assert!(loose.polynomial.monomials()[0].contains(r1));
}

#[test]
fn query3_influence_ranking_is_r3_r1_t6() {
    let p3 = system();
    let dnf = p3.provenance(acquaintance::QUERY).unwrap();
    let top = influence_query(
        &dnf,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Exact,
            top_k: Some(3),
            ..Default::default()
        },
    );
    let names: Vec<&str> = top.iter().map(|e| p3.vars().name(e.var)).collect();
    assert_eq!(names, vec!["r3", "r1", "t6"], "Table 2's ranking");
    assert!((top[0].influence - 0.8192).abs() < 1e-9);
}

#[test]
fn query4_modification_to_half() {
    let p3 = system();
    let dnf = p3.provenance(acquaintance::QUERY).unwrap();
    let plan = modification_query(
        &dnf,
        p3.vars(),
        0.5,
        &ModificationOptions {
            tolerance: 1e-9,
            ..Default::default()
        },
    );
    // One step, on r3, exactly as §4.4 describes.
    assert!(plan.reached_target);
    assert_eq!(plan.steps.len(), 1);
    assert_eq!(p3.vars().name(plan.steps[0].var), "r3");
    assert!((plan.achieved_probability - 0.5).abs() < 1e-9);
}

#[test]
fn explanation_artifacts_render() {
    let p3 = system();
    let exp = p3.explain(acquaintance::QUERY).unwrap();
    assert!(
        exp.dot.contains("know(\\\"Ben\\\",\\\"Elena\\\")"),
        "dot: {}",
        exp.dot
    );
    assert!(exp.text.contains("rule r3"));
    let rendered = p3.render_polynomial(&exp.polynomial);
    assert!(rendered.contains("r3"));
    assert!(rendered.contains("t6"));
}

#[test]
fn intermediate_tuples_are_queryable() {
    let p3 = system();
    // P[know(Steve,Elena)] = 1 − (1−0.8)(1−0.4·0.4·0.6) = 0.8192.
    let p = p3
        .probability(r#"know("Steve","Elena")"#, ProbMethod::Exact)
        .unwrap();
    assert!((p - 0.8192).abs() < 1e-9);
    // And the symmetric direction exists too (r1/r2 are symmetric).
    let p_rev = p3
        .probability(r#"know("Elena","Steve")"#, ProbMethod::Exact)
        .unwrap();
    assert!((p_rev - 0.8192).abs() < 1e-9);
}

#[test]
fn applying_the_modification_changes_the_program() {
    let p3 = system();
    let dnf = p3.provenance(acquaintance::QUERY).unwrap();
    let plan = modification_query(
        &dnf,
        p3.vars(),
        0.5,
        &ModificationOptions {
            tolerance: 1e-9,
            ..Default::default()
        },
    );
    // Apply the plan to the program and re-evaluate end to end.
    let mut program = p3.program().clone();
    for step in &plan.steps {
        let clause = p3::provenance::vars::clause_of(step.var);
        program = program.with_probability(clause, step.to).unwrap();
    }
    let p3_fixed = P3::from_program(program).expect("negation-free program");
    let p = p3_fixed
        .probability(acquaintance::QUERY, ProbMethod::Exact)
        .unwrap();
    assert!((p - 0.5).abs() < 1e-9, "re-evaluated probability {p}");
}
