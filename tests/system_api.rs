//! Cross-crate behaviour of the public API: probability backends agree,
//! hop limits, parallel drivers, error paths, and ExSPAN-rewrite parity
//! through the facade.

use p3::core::{P3Error, ProbMethod, P3};
use p3::prob::McConfig;
use p3::provenance::extract::ExtractOptions;
use p3::workloads::{acquaintance, trust};

#[test]
fn all_probability_backends_agree_on_acquaintance() {
    let p3 = P3::from_source(acquaintance::SOURCE).unwrap();
    let exact = p3
        .probability(acquaintance::QUERY, ProbMethod::Exact)
        .unwrap();
    let bdd = p3
        .probability(acquaintance::QUERY, ProbMethod::Bdd)
        .unwrap();
    assert!((exact - bdd).abs() < 1e-12);
    let cfg = McConfig {
        samples: 200_000,
        seed: 3,
    };
    for method in [
        ProbMethod::MonteCarlo(cfg),
        ProbMethod::KarpLuby(cfg),
        ProbMethod::ParallelMc(cfg, 4),
    ] {
        let est = p3.probability(acquaintance::QUERY, method).unwrap();
        assert!((est - exact).abs() < 0.01, "{method:?}: {est} vs {exact}");
    }
}

#[test]
fn error_paths_are_typed() {
    let p3 = P3::from_source(acquaintance::SOURCE).unwrap();
    assert!(matches!(
        p3.probability(r#"know("Nobody","Elena")"#, ProbMethod::Exact),
        Err(P3Error::BadQuery(_)) | Err(P3Error::NotDerivable(_))
    ));
    assert!(matches!(
        p3.probability("<<<", ProbMethod::Exact),
        Err(P3Error::BadQuery(_))
    ));
    assert!(matches!(P3::from_source("p(X."), Err(P3Error::Program(_))));
}

#[test]
fn hop_limits_monotonically_reveal_derivations() {
    let p3 = P3::from_source(&trust::case_study_source()).unwrap();
    let mut last = 0usize;
    for depth in 0..8 {
        let dnf = p3
            .provenance_with(
                trust::CASE_STUDY_QUERY,
                ExtractOptions::with_max_depth(depth),
            )
            .unwrap();
        assert!(dnf.len() >= last, "depth {depth}");
        last = dnf.len();
    }
    assert_eq!(last, 2, "both Fig 8 derivations visible at full depth");
}

#[test]
fn extractor_reuse_matches_one_shot_extraction() {
    let p3 = P3::from_source(&trust::case_study_source()).unwrap();
    let extractor = p3.extractor();
    let tp = p3.tuple("trustPath(1,6)").unwrap();
    let one_shot = p3.provenance("trustPath(1,6)").unwrap();
    let reused = extractor.polynomial(tp, ExtractOptions::unbounded());
    assert_eq!(one_shot, reused);
}

#[test]
fn facade_exposes_graph_statistics() {
    let p3 = P3::from_source(acquaintance::SOURCE).unwrap();
    let graph = p3.graph();
    assert!(graph.num_execs() > 0);
    assert!(graph.num_tuples() >= 6, "at least the base tuples");
    assert!(
        graph.num_edges() > graph.num_execs(),
        "bodies are non-empty"
    );
}

#[test]
fn rewritten_execution_supports_the_same_queries() {
    // Run the §3.2 literal rewrite end to end and check the polynomial
    // probability matches the direct-capture facade.
    let program = p3::datalog::Program::parse(acquaintance::SOURCE).unwrap();
    let direct = P3::from_program(program.clone()).expect("negation-free program");
    let expected = direct
        .probability(acquaintance::QUERY, ProbMethod::Exact)
        .unwrap();

    let rewritten = p3::provenance::rewrite::rewrite(&program).unwrap();
    let (db, graph) = p3::provenance::rewrite::evaluate_rewritten(&program, &rewritten);
    let (pred, args) =
        p3::datalog::worlds::parse_ground_query(&program, acquaintance::QUERY).unwrap();
    let tuple = db.lookup(pred, &args).unwrap();
    let dnf = p3::provenance::extract_polynomial(&graph, tuple, ExtractOptions::unbounded());
    let vars = p3::provenance::clause_vars(&program);
    let p = p3::prob::exact::probability(&dnf, &vars);
    assert!((p - expected).abs() < 1e-12);
    // Ad-hoc column matching works on the rewritten run's database even for
    // column sets the engine never planned an index for.
    let know = program.symbols().get("know").unwrap();
    let ben = p3::datalog::ast::Const::Sym(program.symbols().get("Ben").unwrap());
    assert!(!db.matching(know, &[0], &[ben]).is_empty());
}

#[test]
fn parallel_influence_agrees_with_sequential_through_the_facade() {
    let p3 = P3::from_source(&trust::case_study_source()).unwrap();
    let dnf = p3.provenance(trust::CASE_STUDY_QUERY).unwrap();
    let cfg = McConfig {
        samples: 50_000,
        seed: 21,
    };
    let seq = p3::core::influence_query(
        &dnf,
        p3.vars(),
        &p3::core::InfluenceOptions {
            method: p3::core::InfluenceMethod::Mc(cfg),
            ..Default::default()
        },
    );
    let par = p3::core::influence_query(
        &dnf,
        p3.vars(),
        &p3::core::InfluenceOptions {
            method: p3::core::InfluenceMethod::ParallelMc(cfg, 4),
            ..Default::default()
        },
    );
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.var, b.var);
        assert!(
            (a.influence - b.influence).abs() < 1e-12,
            "stripe-parallel is exact-equal"
        );
    }
}

#[test]
fn provenance_rejects_negation_but_the_engine_evaluates_it() {
    // The engine extension (stratified negation) works …
    let src = r"r1 1.0: q(X) :- cand(X), \+ blocked(X).
                cand(a).
                b1 0.3: blocked(a).";
    let program = p3::datalog::Program::parse(src).unwrap();
    let prob = p3::datalog::worlds::success_probability_str(&program, "q(a)").unwrap();
    assert!((prob - 0.7).abs() < 1e-12);
    // … but the provenance model is negation-free, so P3 refuses.
    assert!(matches!(
        P3::from_source(src),
        Err(P3Error::UnsupportedNegation)
    ));
}

#[test]
fn database_relations_are_inspectable_by_name() {
    let p3 = P3::from_source(acquaintance::SOURCE).unwrap();
    let know = p3.database().relation_by_name("know").unwrap();
    // know(Ben,Steve) base + derived pairs.
    assert!(know.len() >= 3);
    assert!(p3.database().relation_by_name("nothing").is_none());
}
