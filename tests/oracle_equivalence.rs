//! The central soundness test of the reproduction: for random PLP programs
//! (recursive ones included), the provenance pipeline — capture →
//! cycle-eliminating extraction → exact DNF probability — must agree with
//! the brute-force possible-worlds semantics (Eq. 1–4) on **every** derived
//! tuple. This validates §3.3's cycle-elimination theorem end to end.

use p3::core::P3;
use p3::datalog::worlds;
use p3::prob::exact;
use p3::provenance::extract::{ExtractOptions, Extractor};
use p3::provenance::rewrite;
use p3::workloads::random_programs::{all_derived_queries, generate, RandomConfig};

#[test]
fn extraction_matches_possible_worlds_on_random_programs() {
    let mut checked_tuples = 0usize;
    for seed in 0..25u64 {
        let program = generate(RandomConfig {
            seed,
            ..Default::default()
        });
        let p3 = P3::from_program(program.clone()).expect("negation-free program");
        let extractor = Extractor::new(p3.graph());
        for query in all_derived_queries(&program) {
            let oracle = worlds::success_probability_str(&program, &query)
                .unwrap_or_else(|e| panic!("seed {seed} query {query}: {e}"));
            let tuple = p3.tuple(&query).expect("derived tuple resolvable");
            let dnf = extractor.polynomial(tuple, ExtractOptions::unbounded());
            let prob = exact::probability(&dnf, p3.vars());
            assert!(
                (prob - oracle).abs() < 1e-9,
                "seed {seed}, {query}: provenance {prob} vs worlds {oracle}\nprogram:\n{}",
                program.to_source()
            );
            checked_tuples += 1;
        }
    }
    assert!(
        checked_tuples > 100,
        "the sweep must exercise many tuples: {checked_tuples}"
    );
}

#[test]
fn extraction_matches_possible_worlds_on_heavily_recursive_programs() {
    for seed in 0..10u64 {
        let program = generate(RandomConfig {
            seed: seed.wrapping_mul(7919),
            recursion_bias: 0.9,
            rules: 5,
            facts: 7,
            ..Default::default()
        });
        let p3 = P3::from_program(program.clone()).expect("negation-free program");
        let extractor = Extractor::new(p3.graph());
        for query in all_derived_queries(&program) {
            let oracle = worlds::success_probability_str(&program, &query).unwrap();
            let tuple = p3.tuple(&query).unwrap();
            let dnf = extractor.polynomial(tuple, ExtractOptions::unbounded());
            let prob = exact::probability(&dnf, p3.vars());
            assert!(
                (prob - oracle).abs() < 1e-9,
                "seed {seed}, {query}: provenance {prob} vs worlds {oracle}\nprogram:\n{}",
                program.to_source()
            );
        }
    }
}

#[test]
fn bdd_backend_agrees_with_shannon_on_random_provenance() {
    use p3::prob::bdd::Bdd;
    for seed in 0..10u64 {
        let program = generate(RandomConfig {
            seed: seed + 1000,
            ..Default::default()
        });
        let p3 = P3::from_program(program.clone()).expect("negation-free program");
        let extractor = Extractor::new(p3.graph());
        for query in all_derived_queries(&program) {
            let tuple = p3.tuple(&query).unwrap();
            let dnf = extractor.polynomial(tuple, ExtractOptions::unbounded());
            let shannon = exact::probability(&dnf, p3.vars());
            let mut bdd = Bdd::new();
            let node = bdd.from_dnf(&dnf);
            let wmc = bdd.wmc(node, p3.vars());
            assert!((shannon - wmc).abs() < 1e-9, "seed {seed} {query}");
        }
    }
}

#[test]
fn rewrite_capture_equals_direct_capture_on_random_programs() {
    use p3::provenance::capture::evaluate_with_provenance;
    for seed in 0..15u64 {
        let program = generate(RandomConfig {
            seed: seed + 31,
            ..Default::default()
        });
        let (db_direct, direct) = evaluate_with_provenance(&program);
        let rewritten = rewrite::rewrite(&program).expect("rewrite succeeds");
        let (db_rw, reconstructed) = rewrite::evaluate_rewritten(&program, &rewritten);

        // Compare content signatures (tuple ids differ across databases).
        let syms = program.symbols();
        let sig = |g: &p3::provenance::ProvGraph, db: &p3::datalog::engine::Database| {
            g.signature()
                .into_iter()
                .map(|(t, c, body)| {
                    (
                        format!("{}", db.display_tuple(t, syms)),
                        program.clause(c).label.clone(),
                        body.iter()
                            .map(|&b| format!("{}", db.display_tuple(b, syms)))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(
            sig(&direct, &db_direct),
            sig(&reconstructed, &db_rw),
            "seed {seed}:\n{}",
            program.to_source()
        );
    }
}

#[test]
fn hop_limited_probability_is_a_lower_bound() {
    // Dropping derivations can only lower a monotone formula's probability.
    for seed in 0..10u64 {
        let program = generate(RandomConfig {
            seed: seed + 77,
            ..Default::default()
        });
        let p3 = P3::from_program(program.clone()).expect("negation-free program");
        let extractor = Extractor::new(p3.graph());
        for query in all_derived_queries(&program) {
            let tuple = p3.tuple(&query).unwrap();
            let full = extractor.polynomial(tuple, ExtractOptions::unbounded());
            let p_full = exact::probability(&full, p3.vars());
            let mut prev = 0.0f64;
            for depth in 0..6 {
                let cut = extractor.polynomial(tuple, ExtractOptions::with_max_depth(depth));
                let p_cut = exact::probability(&cut, p3.vars());
                assert!(
                    p_cut <= p_full + 1e-12,
                    "seed {seed} {query} depth {depth}: {p_cut} > {p_full}"
                );
                assert!(
                    p_cut >= prev - 1e-12,
                    "deeper extraction must not lose probability: {p_cut} < {prev}"
                );
                prev = p_cut;
            }
        }
    }
}
