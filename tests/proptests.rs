//! Property-based tests over the whole stack.

use p3::core::{sufficient_provenance, DerivationAlgo, ProbMethod};
use p3::prob::{exact, mc, Dnf, McConfig, Monomial, VarId, VarTable};
use proptest::prelude::*;

/// Strategy: a variable table of `n` variables with arbitrary probabilities
/// and a DNF over them.
fn dnf_and_table(max_vars: usize, max_monomials: usize) -> impl Strategy<Value = (Dnf, VarTable)> {
    (2..=max_vars).prop_flat_map(move |nvars| {
        let probs = proptest::collection::vec(0.0f64..=1.0, nvars);
        let monomials = proptest::collection::vec(
            proptest::collection::vec(0..nvars as u32, 1..=3),
            1..=max_monomials,
        );
        (probs, monomials).prop_map(|(probs, monomials)| {
            let mut table = VarTable::new();
            for (i, p) in probs.iter().enumerate() {
                table.add(format!("x{i}"), *p);
            }
            let dnf = Dnf::new(
                monomials
                    .into_iter()
                    .map(|lits| Monomial::new(lits.into_iter().map(VarId).collect()))
                    .collect(),
            );
            (dnf, table)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_probability_is_in_unit_interval((dnf, vars) in dnf_and_table(6, 6)) {
        let p = exact::probability(&dnf, &vars);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "{p}");
    }

    #[test]
    fn shannon_identity_holds((dnf, vars) in dnf_and_table(6, 6)) {
        // P[λ] = p(x)·P[λ|x=1] + (1−p(x))·P[λ|x=0] for every variable.
        let p = exact::probability(&dnf, &vars);
        for x in dnf.vars() {
            let px = vars.prob(x);
            let hi = exact::probability(&dnf.restrict(x, true), &vars);
            let lo = exact::probability(&dnf.restrict(x, false), &vars);
            prop_assert!((p - (px * hi + (1.0 - px) * lo)).abs() < 1e-9);
        }
    }

    #[test]
    fn bdd_wmc_equals_shannon((dnf, vars) in dnf_and_table(7, 7)) {
        let shannon = exact::probability(&dnf, &vars);
        let mut bdd = p3::prob::bdd::Bdd::new();
        let node = bdd.from_dnf(&dnf);
        prop_assert!((bdd.wmc(node, &vars) - shannon).abs() < 1e-9);
    }

    #[test]
    fn monotonicity_under_or((dnf, vars) in dnf_and_table(6, 5), extra in proptest::collection::vec(0..6u32, 1..=2)) {
        // Adding a derivation can only increase the probability.
        let p = exact::probability(&dnf, &vars);
        let extra: Vec<VarId> = extra.into_iter().filter(|&v| (v as usize) < vars.len()).map(VarId).collect();
        prop_assume!(!extra.is_empty());
        let bigger = dnf.or(&Dnf::new(vec![Monomial::new(extra)]));
        let p2 = exact::probability(&bigger, &vars);
        prop_assert!(p2 >= p - 1e-12, "{p2} < {p}");
    }

    #[test]
    fn restriction_brackets_the_probability((dnf, vars) in dnf_and_table(6, 6)) {
        // For monotone formulas: P[λ|x=0] ≤ P[λ] ≤ P[λ|x=1].
        let p = exact::probability(&dnf, &vars);
        for x in dnf.vars() {
            let hi = exact::probability(&dnf.restrict(x, true), &vars);
            let lo = exact::probability(&dnf.restrict(x, false), &vars);
            prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        }
    }

    #[test]
    fn absorption_preserves_probability((dnf, vars) in dnf_and_table(6, 6)) {
        // Re-normalising an already-normalised formula (or re-adding absorbed
        // monomials) never changes its probability: λ + λ·extra ≡ λ.
        let p = exact::probability(&dnf, &vars);
        let mut monomials = dnf.monomials().to_vec();
        if let Some(first) = dnf.monomials().first() {
            let mut lits = first.literals().to_vec();
            lits.push(dnf.vars()[0]);
            monomials.push(Monomial::new(lits));
        }
        let redundant = Dnf::new(monomials);
        prop_assert!((exact::probability(&redundant, &vars) - p).abs() < 1e-12);
    }

    #[test]
    fn sufficient_provenance_respects_eps(
        (dnf, vars) in dnf_and_table(6, 6),
        eps in 0.0f64..0.3,
    ) {
        for algo in [DerivationAlgo::NaiveGreedy, DerivationAlgo::ReSuciu] {
            let s = sufficient_provenance(&dnf, &vars, eps, algo, ProbMethod::Exact);
            prop_assert!(s.error <= eps + 1e-9, "{algo:?}: {} > {eps}", s.error);
            // λS is a sub-formula.
            for m in s.polynomial.monomials() {
                prop_assert!(dnf.monomials().contains(m));
            }
        }
    }

    #[test]
    fn influence_bounds_hold((dnf, vars) in dnf_and_table(6, 6)) {
        // 0 ≤ Inf_x ≤ 1 for monotone formulas, and Eq. 16 reconstructs P.
        let p = exact::probability(&dnf, &vars);
        for x in dnf.vars() {
            let inf = p3::core::query::influence::exact_influence(&dnf, &vars, x);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&inf));
            let lo = exact::probability(&dnf.restrict(x, false), &vars);
            prop_assert!((p - (inf * vars.prob(x) + lo)).abs() < 1e-9, "Eq. 16");
        }
    }

    #[test]
    fn mc_estimate_brackets_exact((dnf, vars) in dnf_and_table(5, 4)) {
        let p = exact::probability(&dnf, &vars);
        let est = mc::estimate(&dnf, &vars, McConfig { samples: 60_000, seed: 1234 });
        // 60k samples: generous 4-sigma band plus slack for tiny p.
        let sigma = (p * (1.0 - p) / 60_000.0).sqrt();
        prop_assert!((est - p).abs() < 4.0 * sigma + 0.01, "est {est} vs exact {p}");
    }

    #[test]
    fn karp_luby_brackets_exact((dnf, vars) in dnf_and_table(5, 4)) {
        let p = exact::probability(&dnf, &vars);
        let est = mc::karp_luby(&dnf, &vars, McConfig { samples: 60_000, seed: 99 });
        prop_assert!((est - p).abs() < 0.02, "est {est} vs exact {p}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(src in "\\PC{0,200}") {
        // Any input must produce Ok or a structured error — never a panic.
        let _ = p3::datalog::Program::parse(&src);
    }

    #[test]
    fn parser_never_panics_on_clause_shaped_input(
        head in "[a-z][a-z0-9_]{0,8}",
        args in "[A-Za-z0-9_,\"\\. ]{0,30}",
        p in 0.0f64..1.5,
    ) {
        let _ = p3::datalog::Program::parse(&format!("{p}::{head}({args})."));
        let _ = p3::datalog::Program::parse(&format!("x1 {p}: {head}({args}) :- {head}({args})."));
    }

    #[test]
    fn parser_round_trips_generated_programs(seed in 0u64..500) {
        let program = p3::workloads::random_programs::generate(
            p3::workloads::random_programs::RandomConfig { seed, ..Default::default() },
        );
        let reparsed = p3::datalog::Program::parse(&program.to_source()).unwrap();
        prop_assert_eq!(program.to_source(), reparsed.to_source());
    }

    #[test]
    fn modification_reaches_reachable_targets(
        (dnf, vars) in dnf_and_table(5, 4),
        t in 0.05f64..0.95,
    ) {
        use p3::core::{modification_query, ModificationOptions};
        let plan = modification_query(
            &dnf,
            &vars,
            t,
            &ModificationOptions { tolerance: 1e-6, ..Default::default() },
        );
        // Cost bookkeeping is always consistent.
        let recomputed: f64 = plan.steps.iter().map(|s| (s.to - s.from).abs()).sum();
        prop_assert!((plan.total_cost - recomputed).abs() < 1e-9);
        // If the plan claims success, the modified table really achieves it.
        if plan.reached_target {
            let p = exact::probability(&dnf, &plan.modified_vars);
            prop_assert!((p - t).abs() < 1e-5, "claimed {t}, got {p}");
        }
    }
}
