//! §5.1 reproduction: the VQA debugging narrative.

use p3::core::{
    influence_query, modification_query, InfluenceMethod, InfluenceOptions, ModificationOptions,
    ProbMethod, P3,
};
use p3::workloads::vqa;

#[test]
fn barn_image_answers_barn() {
    // On the original photo (horse in the background), "barn" should win —
    // and that is the *correct* answer there (Fig 4).
    let p3 = P3::from_program(vqa::barn_image().to_program()).expect("negation-free program");
    let p_barn = p3.probability(vqa::ANS_BARN, ProbMethod::Exact).unwrap();
    let p_church = p3.probability(vqa::ANS_CHURCH, ProbMethod::Exact).unwrap();
    assert!(p_barn > p_church, "barn {p_barn} vs church {p_church}");
}

#[test]
fn query1a_most_important_derivation_routes_through_the_horse() {
    // Fig 4: the top derivation of ans(ID1,barn) uses sim(barn,horse).
    let p3 = P3::from_program(vqa::barn_image().to_program()).expect("negation-free program");
    let dnf = p3.provenance(vqa::ANS_BARN).unwrap();
    let p = ProbMethod::Exact.probability(&dnf, p3.vars());
    let suff = p3::core::sufficient_provenance(
        &dnf,
        p3.vars(),
        p * 0.5,
        p3::core::DerivationAlgo::NaiveGreedy,
        ProbMethod::Exact,
    );
    let sim_bh = p3
        .program()
        .clause_by_label("sim_barn_horse")
        .map(p3::provenance::vars::var_of)
        .unwrap();
    assert!(
        suff.polynomial
            .monomials()
            .iter()
            .any(|m| m.contains(sim_bh)),
        "kept derivations use sim(barn,horse): {}",
        p3.render_polynomial(&suff.polynomial)
    );
}

#[test]
fn buggy_church_image_still_answers_barn() {
    let p3 =
        P3::from_program(vqa::church_image_buggy().to_program()).expect("negation-free program");
    let p_barn = p3.probability(vqa::ANS_BARN, ProbMethod::Exact).unwrap();
    let p_church = p3.probability(vqa::ANS_CHURCH, ProbMethod::Exact).unwrap();
    assert!(
        p_barn > p_church,
        "the planted bug keeps barn on top: barn {p_barn} vs church {p_church}"
    );
}

#[test]
fn table4_sim_church_cross_is_the_top_unique_influencer() {
    let p3 =
        P3::from_program(vqa::church_image_buggy().to_program()).expect("negation-free program");
    let barn_dnf = p3.provenance(vqa::ANS_BARN).unwrap();
    let church_dnf = p3.provenance(vqa::ANS_CHURCH).unwrap();
    let barn_vars = barn_dnf.vars();
    let unique: Vec<_> = church_dnf
        .vars()
        .into_iter()
        .filter(|v| barn_vars.binary_search(v).is_err())
        .filter(|&v| p3.vars().name(v).starts_with("sim_"))
        .collect();
    assert!(!unique.is_empty());
    let ranked = influence_query(
        &church_dnf,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Exact,
            restrict_to: Some(unique),
            top_k: Some(3),
            ..Default::default()
        },
    );
    assert_eq!(
        p3.vars().name(ranked[0].var),
        "sim_church_cross",
        "Table 4's top entry"
    );
    // The Table 4 ordering: cross > horse > cloud.
    let names: Vec<&str> = ranked.iter().map(|e| p3.vars().name(e.var)).collect();
    assert_eq!(
        names,
        vec!["sim_church_cross", "sim_church_horse", "sim_church_cloud"]
    );
}

#[test]
fn modification_fix_flips_the_answer() {
    let instance = vqa::church_image_buggy();
    let p3 = P3::from_program(instance.to_program()).expect("negation-free program");
    let p_barn = p3.probability(vqa::ANS_BARN, ProbMethod::Exact).unwrap();
    let church_dnf = p3.provenance(vqa::ANS_CHURCH).unwrap();
    let label = instance.sim_label("church", "cross").unwrap();
    let var = p3::provenance::vars::var_of(p3.program().clause_by_label(&label).unwrap());
    let plan = modification_query(
        &church_dnf,
        p3.vars(),
        p_barn,
        &ModificationOptions {
            modifiable: Some(vec![var]),
            tolerance: 0.01,
            ..Default::default()
        },
    );
    assert_eq!(plan.steps.len(), 1);
    assert_eq!(plan.steps[0].var, var);
    assert!(
        plan.steps[0].to > plan.steps[0].from,
        "the fix raises the similarity"
    );

    // Applying roughly that change (the workload's fixed instance uses the
    // paper's 0.51) flips the winner.
    let fixed =
        P3::from_program(vqa::church_image_fixed().to_program()).expect("negation-free program");
    let p_barn2 = fixed.probability(vqa::ANS_BARN, ProbMethod::Exact).unwrap();
    let p_church2 = fixed
        .probability(vqa::ANS_CHURCH, ProbMethod::Exact)
        .unwrap();
    assert!(
        p_church2 > p_barn2,
        "church {p_church2} vs barn {p_barn2} after the fix"
    );
}

#[test]
fn vqa_polynomials_are_nontrivial() {
    // The case study only means something if the provenance has real
    // structure: multiple derivations per answer, dozens of literals.
    let p3 =
        P3::from_program(vqa::church_image_buggy().to_program()).expect("negation-free program");
    let dnf = p3.provenance(vqa::ANS_BARN).unwrap();
    assert!(dnf.len() >= 3, "several derivations: {}", dnf.len());
    assert!(
        dnf.vars().len() >= 8,
        "many participating clauses: {}",
        dnf.vars().len()
    );
}
