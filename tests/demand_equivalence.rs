//! Demand/naive equivalence over generated workloads: for random PLP
//! programs (recursive ones included), a demand-mode session must intern
//! the *same* canonical DNF as a naive-mode session for every derived
//! tuple — same `DnfId`, hence identical polynomials and probabilities —
//! while never forcing the whole model, and both modes must reject
//! underivable queries the same way.

use p3::core::{EvalMode, P3Error, ProbMethod, SessionOptions, P3};
use p3::provenance::extract::ExtractOptions;
use p3::workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use proptest::prelude::*;

fn assert_modes_agree(config: RandomConfig) {
    let seed = config.seed;
    let program = generate(config);
    let queries = all_derived_queries(&program);
    if queries.is_empty() {
        return;
    }

    let p3 = P3::from_program(program.clone()).expect("negation-free program");
    let naive = p3.session_with(SessionOptions {
        eval_mode: EvalMode::Naive,
        ..Default::default()
    });
    let demand = p3.session_with(SessionOptions {
        eval_mode: EvalMode::Demand,
        ..Default::default()
    });

    for query in &queries {
        let opts = ExtractOptions::unbounded();
        let d = demand.provenance_id_with(query, opts).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: demand mode cannot answer {query}: {e}\nprogram:\n{}",
                program.to_source()
            )
        });
        let n = naive.provenance_id_with(query, opts).unwrap();
        // Both modes intern into the shared store, so identical polynomials
        // collapse to the same id.
        assert_eq!(
            n,
            d,
            "seed {seed}, {query}: demand DNF diverges from naive\nprogram:\n{}",
            program.to_source()
        );
        let pn = naive.probability_of(n, ProbMethod::Exact);
        let pd = demand.probability_of(d, ProbMethod::Exact);
        assert!(
            (pn - pd).abs() < 1e-12,
            "seed {seed}, {query}: {pn} vs {pd}"
        );
    }

    // Neither mode derives what the other cannot: a fresh ground atom over
    // an existing predicate is underivable in both.
    if let Some(first) = queries.first() {
        let pred = first.split('(').next().unwrap();
        let bogus = format!("{pred}(99991,99992)");
        let opts = ExtractOptions::unbounded();
        let nd = naive.provenance_id_with(&bogus, opts);
        let dd = demand.provenance_id_with(&bogus, opts);
        match (&nd, &dd) {
            (Err(P3Error::NotDerivable(_)), Err(P3Error::NotDerivable(_)))
            | (Err(P3Error::BadQuery(_)), Err(P3Error::BadQuery(_))) => {}
            other => panic!("seed {seed}: {bogus} -> {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn demand_matches_naive_on_generated_workloads(seed in 0u64..400) {
        assert_modes_agree(RandomConfig { seed, ..Default::default() });
    }

    #[test]
    fn demand_matches_naive_on_heavily_recursive_workloads(seed in 0u64..200) {
        assert_modes_agree(RandomConfig {
            seed: seed.wrapping_mul(7919),
            recursion_bias: 0.9,
            rules: 5,
            facts: 7,
            ..Default::default()
        });
    }
}

#[test]
fn demand_sessions_never_force_the_full_model() {
    // A spot check outside proptest: answering through a demand session
    // leaves the shared whole-model core untouched.
    let program = generate(RandomConfig {
        seed: 7,
        ..Default::default()
    });
    let queries = all_derived_queries(&program);
    let p3 = P3::from_program(program).unwrap();
    let session = p3.session_with(SessionOptions {
        eval_mode: EvalMode::Demand,
        ..Default::default()
    });
    for query in &queries {
        session
            .provenance_id_with(query, ExtractOptions::unbounded())
            .unwrap();
    }
    if !queries.is_empty() {
        assert!(!p3.fully_evaluated(), "demand answers forced naive eval");
        assert!(p3.demand_evaluations() > 0);
    }
}
