//! Integration suite for the static analyzer (`p3 analyze`).
//!
//! Three properties are pinned here:
//!
//! 1. **Totality** — the analyzer accepts every program the parser
//!    accepts (generated workloads and adversarial hand-written shapes)
//!    and always terminates with a finite, renderable plan. It never
//!    panics and never runs the engine.
//! 2. **Observation-only** — answering the same queries with
//!    `QuerySession::analyze` interleaved must intern the *same* DNF
//!    sequence (identical `DnfId`s) and produce bit-identical
//!    probabilities, in both eval modes. Any write path from the
//!    analysis plane into evaluation would shift an id or a bit.
//! 3. **Calibration** — on a sampled trust network the statically
//!    predicted most-expensive rule matches the EXPLAIN-measured top
//!    rule in both eval modes (the acceptance bar `BENCH_analyze.json`
//!    re-checks under criterion timing).

use p3::core::{rank_correlation, EvalMode, ProbMethod, SessionOptions, P3};
use p3::prob::DnfId;
use p3::provenance::extract::ExtractOptions;
use p3::workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use p3::workloads::trust;
use proptest::prelude::*;

// ---------------------------------------------------------------- totality

/// Analyzes a program end to end: full-program plan, per-query plan for
/// every derivable atom shape, and both render paths. Returns the plan so
/// callers can assert on it.
fn analyze_all_paths(program: &p3::datalog::program::Program) -> p3::core::AnalyzePlan {
    let plan = p3::analyze::analyze(program);
    // Both renderers must succeed on any plan.
    let text = plan.render_text();
    assert!(text.starts_with("analyze:"), "header missing:\n{text}");
    let json = plan.to_json_string();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    // Diagnostics, if any, carry P37xx codes only.
    for d in &plan.diagnostics {
        assert!(d.code.starts_with("P37"), "unexpected code {}", d.code);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analyzer_is_total_on_generated_programs(seed in 0u64..400) {
        let program = generate(RandomConfig { seed, ..Default::default() });
        let plan = analyze_all_paths(&program);
        prop_assert!(plan.total_cost() <= 1u64 << 41, "cost cap breached");
        // Per-query analysis is total for any syntactically valid atom,
        // derivable or not.
        for query in ["p(1)", "nosuch(\"x\",Y)", "zero()"] {
            let _ = p3::analyze::analyze_query(&program, query);
        }
    }

    #[test]
    fn analyzer_is_total_on_recursive_workloads(seed in 0u64..200) {
        let program = generate(RandomConfig {
            seed: seed.wrapping_mul(6007),
            recursion_bias: 0.9,
            rules: 5,
            facts: 7,
            ..Default::default()
        });
        let plan = analyze_all_paths(&program);
        // A recursion recommendation must come with a reason string.
        prop_assert!(!plan.reason.is_empty());
    }

    #[test]
    fn analyzer_never_panics_on_clause_shaped_text(
        head in "[a-z][a-z0-9_]{0,8}",
        args in "[A-Za-z0-9_,\"\\. ]{0,30}",
        p in 0.0f64..1.5,
    ) {
        for src in [
            format!("{p}::{head}({args})."),
            format!("x1 {p}: {head}({args}) :- {head}({args})."),
        ] {
            if let Ok(program) = p3::datalog::Program::parse(&src) {
                analyze_all_paths(&program);
            }
        }
    }
}

#[test]
fn analyzer_is_total_on_hostile_shapes() {
    // Hand-written adversarial shapes: empty, facts-only, self-joins,
    // mutual recursion, Cartesian blowup, disjoint domains, constraint
    // heads, deep chains. Each must parse and analyze without panicking.
    let chain: String = (0..40)
        .map(|i| format!("c{i} 0.5: p{}(X) :- p{i}(X).\n", i + 1))
        .chain(std::iter::once("f0 1.0: p0(1).\n".to_string()))
        .collect();
    let hostile: Vec<String> = vec![
        String::new(),
        "t1 1.0: lonely(1).".into(),
        "r1 0.5: self(X,Y) :- self(Y,X).".into(),
        "r1 0.5: a(X) :- b(X). r2 0.5: b(X) :- a(X). t1 1.0: b(1).".into(),
        "r1 0.9: pair(X,Y) :- p(X), q(Y). t1 1.0: p(1). t2 1.0: q(2).".into(),
        // Disjoint join domains: the body can never unify.
        "r1 0.5: m(X) :- p(X), q(X). t1 1.0: p(1). t2 1.0: q(\"a\").".into(),
        "r1 0.5: big(A,B,C,D) :- e(A,B), e(B,C), e(C,D), A != D. t1 0.5: e(1,2). t2 0.5: e(2,3). t3 0.5: e(3,1).".into(),
        chain,
    ];
    for src in &hostile {
        let program = p3::datalog::Program::parse(src).expect("hostile source parses");
        let plan = analyze_all_paths(&program);
        assert!(plan.total_cost() <= 1u64 << 41, "source: {src}");
    }
}

#[test]
fn recommendation_agrees_with_auto_mode_resolution() {
    // `EvalMode::Auto` and the analyzer must never disagree: the session's
    // resolved mode is exactly the plan's recommendation.
    for seed in 0..40u64 {
        let program = generate(RandomConfig {
            seed,
            ..Default::default()
        });
        let plan = p3::analyze::analyze(&program);
        let decision = EvalMode::Auto.decide(&program);
        let expect = if plan.recommend_demand {
            EvalMode::Demand
        } else {
            EvalMode::Naive
        };
        assert_eq!(decision.mode, expect, "seed {seed}");
        assert_eq!(decision.reason, plan.reason, "seed {seed}");
    }
}

// ---------------------------------------------------------- observation-only

/// Answers every query through a fresh session, returning the interned id
/// and the probability's raw bits. With `analyze` set, the static analyzer
/// runs before the session answers anything and again around every query —
/// the observation path under test.
fn transcript(
    program: &p3::datalog::program::Program,
    queries: &[String],
    mode: EvalMode,
    analyze: bool,
) -> Vec<(DnfId, u64)> {
    let p3 = P3::from_program(program.clone()).expect("negation-free program");
    let session = p3.session_with(SessionOptions {
        eval_mode: mode,
        ..Default::default()
    });
    if analyze {
        let plan = session.analyze(None);
        assert!(plan.query.is_none());
    }
    let mut out = Vec::new();
    for query in queries {
        if analyze {
            let plan = session.analyze(Some(query));
            assert_eq!(
                plan.query.as_ref().map(|q| q.query.as_str()),
                Some(query.as_str())
            );
        }
        let id = session
            .provenance_id_with(query, ExtractOptions::unbounded())
            .unwrap();
        let p = session.probability_of(id, ProbMethod::Exact);
        if analyze {
            session.analyze(Some(query));
        }
        out.push((id, p.to_bits()));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn analyze_never_perturbs_ids_or_probabilities(seed in 0u64..400) {
        let program = generate(RandomConfig { seed, ..Default::default() });
        let queries = all_derived_queries(&program);
        prop_assume!(!queries.is_empty());
        for mode in [EvalMode::Naive, EvalMode::Demand] {
            let plain = transcript(&program, &queries, mode, false);
            let analyzed = transcript(&program, &queries, mode, true);
            prop_assert_eq!(
                &plain,
                &analyzed,
                "seed {}, {:?}: analyze perturbed evaluation\nprogram:\n{}",
                seed,
                mode,
                program.to_source()
            );
        }
    }

    #[test]
    fn analyze_never_perturbs_recursive_workloads(seed in 0u64..200) {
        let program = generate(RandomConfig {
            seed: seed.wrapping_mul(6007),
            recursion_bias: 0.9,
            rules: 5,
            facts: 7,
            ..Default::default()
        });
        let queries = all_derived_queries(&program);
        prop_assume!(!queries.is_empty());
        for mode in [EvalMode::Naive, EvalMode::Demand] {
            let plain = transcript(&program, &queries, mode, false);
            let analyzed = transcript(&program, &queries, mode, true);
            prop_assert_eq!(&plain, &analyzed, "seed {}, {:?}", seed, mode);
        }
    }
}

// ---------------------------------------------------------------- calibration

/// The measured top rule of an EXPLAIN plan: highest cost among rules that
/// did any work, label ascending as the tiebreak (the plan is pre-sorted
/// exactly this way, so the first non-zero row wins).
fn measured_top(plan: &p3::datalog::explain::ExplainPlan) -> Option<String> {
    plan.rules
        .iter()
        .find(|r| r.cost() > 0)
        .or_else(|| plan.rules.first())
        .map(|r| r.label.clone())
}

#[test]
fn trust_top_rule_prediction_matches_explain_in_both_modes() {
    // A sparse sampled trust network where the transitive-closure rule r2
    // dominates measured cost under BOTH eval modes — the workload the
    // acceptance criterion names. (Denser samples with many mutual pairs
    // let r3's quadratic trustPath self-join win under naive while r2
    // still wins under demand; no mode-independent static prediction can
    // match both there.)
    let net = trust::generate(trust::NetworkConfig {
        nodes: 200,
        edges: 260,
        seed: 7,
        ..trust::NetworkConfig::default()
    });
    let sample = net.sample_bfs(80, 11);
    let program = sample.to_program();
    let query = all_derived_queries(&program)
        .into_iter()
        .find(|q| q.starts_with("mutualTrustPath("))
        .expect("sample derives at least one mutualTrustPath tuple");

    for mode in [EvalMode::Naive, EvalMode::Demand] {
        let p3 = P3::from_program(program.clone()).expect("negation-free program");
        let session = p3.session_with(SessionOptions {
            eval_mode: mode,
            ..Default::default()
        });
        let plan = session.analyze(Some(&query));
        let predicted = plan.top_rule().expect("plan has rules").label.clone();
        let explained = session.explain(&query).expect("query explains");
        let measured = measured_top(&explained.plan).expect("explain has rules");
        assert_eq!(
            predicted, measured,
            "{mode:?}: predicted top rule diverges from measured"
        );

        // The full ranking correlates against the naive (whole-program)
        // measurement — that is what the static model predicts; a demand
        // plan only covers the query's magic fragment, so only its top
        // slot is comparable.
        if mode == EvalMode::Naive {
            let predicted_costs: Vec<(String, u64)> = plan
                .rules
                .iter()
                .map(|r| (r.label.clone(), r.cost()))
                .collect();
            let measured_costs: Vec<(String, u64)> = explained
                .plan
                .rules
                .iter()
                .map(|r| (r.label.clone(), r.cost()))
                .collect();
            let rho = rank_correlation(&predicted_costs, &measured_costs);
            assert!(rho >= 0.6, "naive rank correlation {rho} too low");
        }
    }
}

#[test]
fn trust_analysis_recommends_demand_and_predicts_recursion() {
    let program = trust::case_study_program();
    let plan = p3::analyze::analyze(&program);
    assert!(plan.recommend_demand, "recursive trust program");
    assert!(
        plan.rules.iter().any(|r| r.recursive),
        "r2 is in the trustPath fixpoint loop"
    );
    // The analysis itself must be fast enough to run on every query:
    // microseconds, not milliseconds (generous bound for debug builds).
    assert!(plan.analysis_us < 1_000_000, "{}us", plan.analysis_us);
}
