//! §5.2 reproduction: the Mutual Trust case study on the Fig 8 scenario
//! with the Table 5 probabilities.

use p3::core::{
    influence_query, modification_query, InfluenceMethod, InfluenceOptions, ModificationOptions,
    Strategy, P3,
};
use p3::prob::VarId;
use p3::workloads::trust;

fn system() -> P3 {
    P3::from_source(&trust::case_study_source()).expect("case study loads")
}

fn base_tuple_vars(p3: &P3) -> Vec<VarId> {
    p3.program()
        .iter()
        .filter(|(_, c)| c.is_fact())
        .map(|(id, _)| p3::provenance::vars::var_of(id))
        .collect()
}

#[test]
fn query2a_provenance_graph_matches_fig8() {
    let p3 = system();
    let exp = p3.explain(trust::CASE_STUDY_QUERY).unwrap();
    // mutualTrustPath(1,6) = r3 · trustPath(1,6) · trustPath(6,1);
    // trustPath(1,6) has two (acyclic) derivations, trustPath(6,1) one —
    // so the polynomial has exactly two monomials.
    assert_eq!(exp.num_derivations, 2);
    // Exact probability (paper reports 0.3524 from Monte-Carlo).
    assert!(
        (exp.probability - 0.354942).abs() < 1e-9,
        "got {}",
        exp.probability
    );

    let tp16 = p3.explain("trustPath(1,6)").unwrap();
    assert_eq!(tp16.num_derivations, 2, "paths 1->2->6 and 1->13->2->6");
    let tp61 = p3.explain("trustPath(6,1)").unwrap();
    assert_eq!(tp61.num_derivations, 1, "single path 6->2->1");
}

#[test]
fn query2b_influence_ranking_matches_the_paper() {
    let p3 = system();
    let dnf = p3.provenance(trust::CASE_STUDY_QUERY).unwrap();
    let ranked = influence_query(
        &dnf,
        p3.vars(),
        &InfluenceOptions {
            method: InfluenceMethod::Exact,
            restrict_to: Some(base_tuple_vars(&p3)),
            ..Default::default()
        },
    );
    // trust(6,2) first with ~0.51, trust(2,6) second with ~0.48.
    assert_eq!(p3.vars().name(ranked[0].var), "t5", "t5 is trust(6,2)");
    assert!(
        (ranked[0].influence - 0.50706).abs() < 1e-5,
        "{}",
        ranked[0].influence
    );
    assert_eq!(p3.vars().name(ranked[1].var), "t4", "t4 is trust(2,6)");
    assert!(
        (ranked[1].influence - 0.47329).abs() < 1e-4,
        "{}",
        ranked[1].influence
    );
    // The paper's footnote: trust(6,2) outranks trust(2,1) because
    // P[trust(2,1)] = 0.9 is nearly certain already.
    let t2_rank = ranked
        .iter()
        .position(|e| p3.vars().name(e.var) == "t2")
        .unwrap();
    assert!(t2_rank > 1);
}

#[test]
fn query2c_greedy_plan_matches_table6() {
    let p3 = system();
    let dnf = p3.provenance(trust::CASE_STUDY_QUERY).unwrap();
    let plan = modification_query(
        &dnf,
        p3.vars(),
        0.7,
        &ModificationOptions {
            modifiable: Some(base_tuple_vars(&p3)),
            tolerance: 1e-6,
            ..Default::default()
        },
    );
    assert!(plan.reached_target);
    // Table 6: trust(6,2) → 1.0, trust(2,6) → 1.0, trust(2,1) → ~0.93.
    let names: Vec<&str> = plan.steps.iter().map(|s| p3.vars().name(s.var)).collect();
    assert_eq!(names, vec!["t5", "t4", "t2"], "same order as Table 6");
    assert_eq!(plan.steps[0].to, 1.0);
    assert_eq!(plan.steps[1].to, 1.0);
    assert!(
        (plan.steps[2].to - 0.93).abs() < 0.01,
        "paper: 0.93, got {}",
        plan.steps[2].to
    );
    // Total change ≈ 0.58.
    assert!(
        (plan.total_cost - 0.58).abs() < 0.02,
        "paper: 0.58, got {}",
        plan.total_cost
    );
}

#[test]
fn query2c_random_baseline_costs_more() {
    let p3 = system();
    let dnf = p3.provenance(trust::CASE_STUDY_QUERY).unwrap();
    let greedy = modification_query(
        &dnf,
        p3.vars(),
        0.7,
        &ModificationOptions {
            modifiable: Some(base_tuple_vars(&p3)),
            tolerance: 1e-6,
            ..Default::default()
        },
    );
    let mut worse = 0usize;
    let mut total = 0usize;
    for seed in 0..20u64 {
        let plan = modification_query(
            &dnf,
            p3.vars(),
            0.7,
            &ModificationOptions {
                modifiable: Some(base_tuple_vars(&p3)),
                strategy: Strategy::Random { seed },
                tolerance: 1e-6,
                ..Default::default()
            },
        );
        if plan.reached_target {
            total += 1;
            if plan.total_cost >= greedy.total_cost - 1e-9 {
                worse += 1;
            }
        }
    }
    assert!(total > 10, "most random runs should reach the target");
    assert_eq!(worse, total, "greedy is never beaten on this instance");
}

#[test]
fn trust_rules_derive_expected_relations_on_a_synthetic_sample() {
    let net = trust::generate(trust::NetworkConfig {
        nodes: 60,
        edges: 240,
        seed: 2,
        ..trust::NetworkConfig::default()
    });
    let sample = net.sample_bfs(30, 3);
    let p3 = P3::from_program(sample.to_program()).expect("negation-free program");
    let symbols = p3.program().symbols();
    let trust_pred = symbols.get("trust").unwrap();
    let tp = symbols.get("trustPath").unwrap();
    let n_trust = p3.database().relation(trust_pred).unwrap().len();
    let n_tp = p3.database().relation(tp).map(|r| r.len()).unwrap_or(0);
    assert!(
        n_tp >= n_trust,
        "every trust edge is a one-hop trustPath (r1)"
    );
}
