//! Session-layer guarantees: cached answers equal fresh ones (property
//! tests over random programs) and a shared `P3`/`QuerySession` serves
//! concurrent mixed workloads with the same answers as a sequential run.

use p3::core::{
    DerivationAlgo, InfluenceMethod, InfluenceOptions, ModificationOptions, ProbMethod, P3,
};
use p3::workloads::random_programs::{all_derived_queries, generate, RandomConfig};
use proptest::prelude::*;

/// `P3` and `QuerySession` must be shareable across threads.
#[test]
fn p3_and_sessions_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<P3>();
    assert_send_sync::<p3::core::QuerySession>();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every derived tuple of a random program, the session answer —
    /// first call (cache miss) and second call (cache hit) — equals a
    /// fresh, uncached computation.
    #[test]
    fn session_probability_equals_fresh_on_random_programs(
        seed in 0u64..1_000,
        domain in 2usize..=4,
        facts in 3usize..=8,
        rules in 2usize..=5,
    ) {
        let program = generate(RandomConfig { domain, facts, rules, seed, ..Default::default() });
        let queries = all_derived_queries(&program);
        prop_assume!(!queries.is_empty());
        let p3 = P3::from_program(program).unwrap();
        let session = p3.session();
        for q in queries.iter().take(12) {
            let fresh = p3.probability(q, ProbMethod::Exact).unwrap();
            let first = session.probability(q, ProbMethod::Exact).unwrap();
            let second = session.probability(q, ProbMethod::Exact).unwrap();
            prop_assert_eq!(first, fresh, "first call differs for {}", q);
            prop_assert_eq!(second, fresh, "cached call differs for {}", q);
        }
    }

    /// Session-cached extraction hands back the same polynomial as the
    /// uncached extractor, and interning is stable: asking twice yields the
    /// same `DnfId`.
    #[test]
    fn session_extraction_equals_fresh_on_random_programs(
        seed in 0u64..1_000,
        facts in 3usize..=8,
        rules in 2usize..=5,
    ) {
        let program = generate(RandomConfig { facts, rules, seed, ..Default::default() });
        let queries = all_derived_queries(&program);
        prop_assume!(!queries.is_empty());
        let p3 = P3::from_program(program).unwrap();
        let session = p3.session();
        for q in queries.iter().take(12) {
            let fresh = p3.provenance(q).unwrap();
            let id = session.provenance_id(q).unwrap();
            prop_assert_eq!(&*session.dnf(id), &fresh, "polynomial differs for {}", q);
            prop_assert_eq!(session.provenance_id(q).unwrap(), id, "unstable id for {}", q);
        }
    }

    /// Monte-Carlo answers are deterministic per seed, so they too must
    /// survive the cache unchanged.
    #[test]
    fn session_mc_probability_is_deterministic(seed in 0u64..500) {
        let program = generate(RandomConfig { seed, ..Default::default() });
        let queries = all_derived_queries(&program);
        prop_assume!(!queries.is_empty());
        let p3 = P3::from_program(program).unwrap();
        let session = p3.session();
        let method = ProbMethod::MonteCarlo(p3::prob::McConfig { samples: 2_000, seed: 7 });
        let q = &queries[0];
        let fresh = p3.probability(q, method).unwrap();
        prop_assert_eq!(session.probability(q, method).unwrap(), fresh);
        prop_assert_eq!(session.probability(q, method).unwrap(), fresh);
    }
}

/// The acquaintance program of the paper's running example.
const ACQ: &str = r#"
    r1 0.8: know(P1,P2) :- live(P1,C), live(P2,C), P1 != P2.
    r2 0.4: know(P1,P2) :- like(P1,L), like(P2,L), P1 != P2.
    r3 0.2: know(P1,P3) :- know(P1,P2), know(P2,P3), P1 != P3.
    t1 1.0: live("Steve","DC").
    t2 1.0: live("Elena","DC").
    t3 1.0: live("Mary","NYC").
    t4 0.4: like("Steve","Veggies").
    t5 0.6: like("Elena","Veggies").
    t6 1.0: know("Ben","Steve").
"#;

/// One shared `P3` + one shared session, hammered by 8 threads running all
/// four query classes concurrently; every thread's answers must equal the
/// sequential baseline computed up front.
#[test]
fn concurrent_mixed_queries_match_sequential() {
    let p3 = P3::from_source(ACQ).unwrap();
    let session = p3.session();
    let queries = [
        r#"know("Ben","Elena")"#,
        r#"know("Steve","Elena")"#,
        r#"know("Ben","Steve")"#,
    ];
    let inf_opts = InfluenceOptions {
        method: InfluenceMethod::Exact,
        ..Default::default()
    };
    let mod_opts = ModificationOptions::default();

    // Sequential baseline, computed before any session cache is warm.
    let baseline: Vec<_> = queries
        .iter()
        .map(|q| {
            let explanation = p3.explain(q).unwrap();
            let sufficient = p3::core::sufficient_provenance(
                &explanation.polynomial,
                p3.vars(),
                0.01,
                DerivationAlgo::NaiveGreedy,
                ProbMethod::Exact,
            );
            let influence =
                p3::core::influence_query(&explanation.polynomial, p3.vars(), &inf_opts);
            let modification =
                p3::core::modification_query(&explanation.polynomial, p3.vars(), 0.9, &mod_opts);
            (explanation, sufficient, influence, modification)
        })
        .collect();

    const THREADS: usize = 8;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = session.clone();
            let baseline = &baseline;
            let inf_opts = &inf_opts;
            let mod_opts = &mod_opts;
            scope.spawn(move || {
                // Each thread walks the queries from a different offset so
                // cache misses and hits interleave across threads.
                for round in 0..queries.len() {
                    let i = (t + round) % queries.len();
                    let q = queries[i];
                    let (exp, suff, inf, plan) = &baseline[i];
                    match t % 4 {
                        // Explanation class: probability + polynomial.
                        0 => {
                            let p = session.probability(q, ProbMethod::Exact).unwrap();
                            assert_eq!(p, exp.probability, "{q}");
                            assert_eq!(session.provenance(q).unwrap(), exp.polynomial);
                        }
                        // Derivation class.
                        1 => {
                            let s = session
                                .sufficient_provenance(
                                    q,
                                    0.01,
                                    DerivationAlgo::NaiveGreedy,
                                    ProbMethod::Exact,
                                )
                                .unwrap();
                            assert_eq!(s.polynomial, suff.polynomial, "{q}");
                            assert_eq!(s.probability, suff.probability, "{q}");
                        }
                        // Influence class.
                        2 => {
                            let entries = session.influence(q, inf_opts).unwrap();
                            assert_eq!(entries.len(), inf.len(), "{q}");
                            for (a, b) in entries.iter().zip(inf) {
                                assert_eq!(a.var, b.var, "{q}");
                                assert!((a.influence - b.influence).abs() < 1e-12, "{q}");
                            }
                        }
                        // Modification class.
                        _ => {
                            let m = session.modification(q, 0.9, mod_opts).unwrap();
                            assert_eq!(m.steps.len(), plan.steps.len(), "{q}");
                            assert!(
                                (m.achieved_probability - plan.achieved_probability).abs() < 1e-12,
                                "{q}"
                            );
                        }
                    }
                    // Cross-class check through the same shared caches.
                    assert_eq!(
                        session.probability(q, ProbMethod::Exact).unwrap(),
                        exp.probability,
                        "{q}"
                    );
                }
            });
        }
    });

    // The shared caches actually absorbed the repeat traffic.
    let stats = session.stats();
    assert!(
        stats.hits > 0,
        "expected cross-thread cache hits, got {stats:?}"
    );
}

/// `P3::batch_probabilities` (scoped worker threads over a shared session)
/// agrees with one-at-a-time evaluation.
#[test]
fn batch_probabilities_match_sequential() {
    let program = generate(RandomConfig {
        facts: 10,
        rules: 5,
        seed: 42,
        ..Default::default()
    });
    let queries = all_derived_queries(&program);
    assert!(!queries.is_empty());
    let p3 = P3::from_program(program).unwrap();
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    let batch = p3.batch_probabilities(&refs, ProbMethod::Exact, 4);
    assert_eq!(batch.len(), refs.len());
    for (q, got) in refs.iter().zip(&batch) {
        let expected = p3.probability(q, ProbMethod::Exact).unwrap();
        assert_eq!(*got.as_ref().unwrap(), expected, "{q}");
    }
}
